"""MDG / INTERF_do1000 — cutoff control flow, array + scalar reductions.

A water-simulation pairwise-interaction idiom: for each molecule, walk an
input-dependent pair list, apply a distance cutoff (statically
unpredictable control flow) and accumulate forces into *both* endpoints —
sum reductions with collisions — plus a scalar energy reduction updated
inside the conditional.  The paper reports privatization + reduction
parallelization for this loop.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PaperExpectation, Workload


def _source(n: int, pool: int) -> str:
    return f"""
program mdg_interf
  integer n, i, j, k
  real x({n}), yv({n}), fx({n}), fy({n})
  integer pair({pool}), pbase({n}), pcnt({n})
  real cutoff, esum
  real px, py, dx, dy, d2, f
  do i = 1, n
    px = x(i)
    py = yv(i)
    do j = 1, pcnt(i)
      k = pair(pbase(i) + j)
      dx = x(k) - px
      dy = yv(k) - py
      d2 = dx * dx + dy * dy
      if (d2 < cutoff) then
        f = 1.0 / (d2 + 0.1)
        fx(i) = fx(i) + f * dx
        fy(i) = fy(i) + f * dy
        fx(k) = fx(k) - f * dx
        fy(k) = fy(k) - f * dy
        esum = esum + f * 0.5
      end if
    end do
  end do
end
"""


def build_mdg(n: int = 250, pairs_per: int = 10, seed: int = 0) -> Workload:
    """Build the MDG-like workload with ``n`` molecules."""
    rng = np.random.default_rng(seed)
    pcnt = rng.integers(max(1, pairs_per - 4), pairs_per + 5, n)
    pbase = np.concatenate(([0], np.cumsum(pcnt)[:-1]))
    pool = int(pcnt.sum())
    pair = rng.integers(1, n + 1, pool)
    return Workload(
        name="MDG_INTERF_do1000",
        source=_source(n, pool),
        inputs={
            "n": n,
            "pcnt": pcnt,
            "pbase": pbase,
            "pair": pair,
            "x": rng.normal(size=n),
            "yv": rng.normal(size=n),
            "cutoff": 2.0,
        },
        expectation=PaperExpectation(
            transforms=("privatization", "reduction"),
            inspector_extractable=True,
            test_passes=True,
            notes="cutoff-guarded force accumulation, scalar energy reduction",
        ),
        description="pairwise interactions under a distance cutoff",
        check_arrays=("fx", "fy"),
        check_scalars=("esum",),
    )
