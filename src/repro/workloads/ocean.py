"""OCEAN / FTRVMT_do109 — input-parameter-dependent parallelism.

An FFT-flavoured strided update: whether the read and write regions of
``data`` overlap depends entirely on the scalar offset/stride parameters,
which only exist at run time.  The loop is small and executed thousands
of times per program run, which is what makes *schedule reuse* pay: the
test outcome is memoized on the (offset, stride, bounds) pattern
signature and subsequent invocations skip marking and analysis.

``build_ocean(overlap=True)`` produces the failing variant (read region
intersects the write region → genuine flow dependences → the test fails
and the loop re-executes serially), used by the failure-cost experiment.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PaperExpectation, Workload


def _source(size: int) -> str:
    return f"""
program ocean_ftrvmt
  integer nk, k, ia, ib, is
  real data({size}), c1, c2
  do k = 1, nk
    data(ia + (k - 1) * is) = data(ia + (k - 1) * is) * c1 + data(ib + (k - 1) * is) * c2
  end do
end
"""


def build_ocean(nk: int = 400, overlap: bool = False, seed: int = 0) -> Workload:
    """Build the OCEAN-like workload.

    ``overlap=False``: the write region ``[ia, ia+nk)`` and read region
    ``[ib, ib+nk)`` are disjoint (unit stride) → the test passes.
    ``overlap=True``: the reads trail the writes (``ib < ia`` with the
    regions overlapping), so later iterations read elements written by
    earlier ones — genuine cross-iteration *flow* dependences → the test
    fails.  (A forward overlap would only create anti dependences, which
    copy-in privatization legalizes.)
    """
    rng = np.random.default_rng(seed)
    size = 2 * nk + 8
    if overlap:
        ia = nk // 2 + 1
        ib = 1
    else:
        ia = 1
        ib = ia + nk
    data = rng.normal(size=size)
    return Workload(
        name="OCEAN_FTRVMT_do109",
        source=_source(size),
        inputs={
            "nk": nk,
            "ia": ia,
            "ib": ib,
            "is": 1,
            "c1": 0.75,
            "c2": 0.5,
            "data": data,
        },
        expectation=PaperExpectation(
            transforms=(),
            inspector_extractable=True,
            test_passes=not overlap,
            notes="parallelism depends on run-time offsets; schedule reuse",
        ),
        description="strided butterfly update with run-time offsets",
        check_arrays=("data",),
    )
