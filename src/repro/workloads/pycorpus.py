"""A corpus of real Python numeric-kernel loops for the lifting frontend.

Each :class:`CorpusLoop` is an actual Python function (the kind of loop
the paper's speculative test targets, §V) plus a seeded input builder.
The corpus spans the five construct classes the ``python`` frontend
lifts — subscripted subscripts, data-dependent ``if``s, scalar
temporaries, inner loops, and reduction idioms — and a handful of loops
it must *reject* with a named reason.

The loops double as parity oracles: ``benchmarks/bench_lift_corpus.py``
and ``tests/frontend/test_corpus_parity.py`` execute each kernel both
natively (plain CPython over the arrays) and through lift + LRPD runtime
and require bit-identical final state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import WorkloadError
from repro.frontend import LiftResult, get_frontend
from repro.workloads.base import Workload

#: The construct classes the python frontend grows toward (ISSUE lingo).
CONSTRUCTS = (
    "subscripted-subscripts",
    "data-dependent-ifs",
    "scalar-temporaries",
    "inner-loops",
    "reduction-idioms",
)


@dataclass(frozen=True)
class CorpusLoop:
    """One real Python loop nest plus its expectations."""

    name: str
    kernel: Callable
    make_inputs: Callable[[], dict]
    description: str
    #: which of :data:`CONSTRUCTS` the kernel exercises.
    constructs: tuple[str, ...] = ()
    #: when not None the lift must be *rejected* with exactly this reason.
    reject_reason: str | None = None
    #: expected LRPD verdict under speculation (None: don't assert).
    expect_pass: bool | None = True
    #: arrays whose final values parity checks compare bit-for-bit.
    check_arrays: tuple[str, ...] = ()
    #: scalar names the kernel returns, in return order.
    returns: tuple[str, ...] = ()

    @property
    def liftable(self) -> bool:
        return self.reject_reason is None


# ---------------------------------------------------------------------------
# Liftable kernels
# ---------------------------------------------------------------------------


def saxpy(y, x, a, n):
    for i in range(n):
        y[i] = a * x[i] + y[i]


def gather(y, x, idx, n):
    for i in range(n):
        y[i] = x[idx[i]]


def scatter_perm(y, x, perm, n):
    for i in range(n):
        y[perm[i]] = x[i]


def histogram(h, b, w, n):
    for i in range(n):
        h[b[i]] += w[i]


def sum_reduce(x, n):
    s = 0.0
    for i in range(n):
        s += x[i]
    return s


def dot(x, y, n):
    s = 0.0
    for i in range(n):
        s += x[i] * y[i]
    return s


def norm_temp(x, n, mu):
    s = 0.0
    for i in range(n):
        t = x[i] - mu
        s += t * t
    return s


def relu_mask(x, y, m, n):
    for i in range(n):
        if x[i] > 0.0:
            y[i] = x[i]
            m[i] = 1
        else:
            y[i] = 0.0
            m[i] = 0


def threshold_count(x, n, c):
    k = 0
    for i in range(n):
        if x[i] > c:
            k = k + 1
    return k


def clip_temp(x, y, n, lo, hi):
    for i in range(n):
        t = x[i]
        if t > hi:
            t = hi
        if t < lo:
            t = lo
        y[i] = t


def window_sum(x, y, n, w):
    for i in range(n - w):
        acc = 0.0
        for j in range(w):
            acc = acc + x[i + j]
        y[i] = acc


def force_scatter(f, x, nbr, w, n, k):
    for i in range(n):
        acc = 0.0
        for j in range(k):
            acc = acc + x[nbr[i * k + j]]
        t = acc * w[i]
        for j in range(k):
            f[nbr[i * k + j]] += t


def running_max(x, n):
    m = x[0]
    for i in range(n):
        m = max(m, x[i])
    return m


def spice_gate(g, node, v, gain, n):
    for i in range(n):
        t = v[i] * gain[i]
        if t > 0.0:
            g[node[i]] += t


def cumsum(y, x, n):
    for i in range(1, n):
        y[i] = y[i - 1] + x[i]


def decay_chain(a, b, n, k):
    for i in range(k, n):
        a[i] = a[i - k] * 0.5 + b[i]


# ---------------------------------------------------------------------------
# Kernels the frontend must reject, with a named reason
# ---------------------------------------------------------------------------


def append_positive(x, n):
    out = []
    for i in range(n):
        if x[i] > 0.0:
            out.append(x[i])
    return out


def first_negative(x, n):
    j = -1
    for i in range(n):
        if x[i] < 0.0:
            j = i
            break
    return j


def row_sums(a, s, rows, cols):
    for i in range(rows):
        for j in range(cols):
            s[i] += a[i, j]


def total(xs):
    s = 0.0
    for v in xs:
        s += v
    return s


# ---------------------------------------------------------------------------
# Input builders (seeded; explicit dtypes so parity is bit-exact)
# ---------------------------------------------------------------------------

_N = 96


def _rng():
    return np.random.default_rng(20260808)


def _saxpy_inputs():
    r = _rng()
    return {"y": r.random(_N), "x": r.random(_N), "a": 1.5, "n": _N}


def _gather_inputs():
    r = _rng()
    return {
        "y": np.zeros(_N),
        "x": r.random(_N),
        "idx": r.integers(0, _N, size=_N).astype(np.int64),
        "n": _N,
    }


def _scatter_inputs():
    r = _rng()
    return {
        "y": np.zeros(_N),
        "x": r.random(_N),
        "perm": r.permutation(_N).astype(np.int64),
        "n": _N,
    }


def _histogram_inputs():
    r = _rng()
    return {
        "h": np.zeros(16),
        "b": r.integers(0, 16, size=_N).astype(np.int64),
        "w": r.random(_N),
        "n": _N,
    }


def _vector_inputs():
    r = _rng()
    return {"x": r.random(_N), "n": _N}


def _dot_inputs():
    r = _rng()
    return {"x": r.random(_N), "y": r.random(_N), "n": _N}


def _norm_inputs():
    r = _rng()
    return {"x": r.random(_N), "n": _N, "mu": 0.5}


def _relu_inputs():
    r = _rng()
    return {
        "x": r.random(_N) - 0.5,
        "y": np.zeros(_N),
        "m": np.zeros(_N, dtype=np.int64),
        "n": _N,
    }


def _threshold_inputs():
    r = _rng()
    return {"x": r.random(_N), "n": _N, "c": 0.75}


def _clip_inputs():
    r = _rng()
    return {"x": r.random(_N) * 2.0 - 1.0, "y": np.zeros(_N), "n": _N,
            "lo": -0.25, "hi": 0.25}


def _window_inputs():
    r = _rng()
    return {"x": r.random(_N), "y": np.zeros(_N), "n": _N, "w": 5}


def _force_inputs():
    r = _rng()
    n, k = 24, 4
    return {
        "f": np.zeros(32),
        "x": r.random(32),
        "nbr": r.integers(0, 32, size=n * k).astype(np.int64),
        "w": r.random(n),
        "n": n,
        "k": k,
    }


def _spice_inputs():
    r = _rng()
    return {
        "g": np.zeros(12),
        "node": r.integers(0, 12, size=_N).astype(np.int64),
        "v": r.random(_N) - 0.5,
        "gain": r.random(_N),
        "n": _N,
    }


def _cumsum_inputs():
    r = _rng()
    return {"y": r.random(_N), "x": r.random(_N), "n": _N}


def _chain_inputs():
    r = _rng()
    return {"a": r.random(_N), "b": r.random(_N), "n": _N, "k": 8}


def _rows_inputs():
    r = _rng()
    return {"a": r.random((6, 8)), "s": np.zeros(6), "rows": 6, "cols": 8}


def _xs_inputs():
    r = _rng()
    return {"xs": r.random(_N)}


# ---------------------------------------------------------------------------
# The corpus registry
# ---------------------------------------------------------------------------

_LOOPS = (
    CorpusLoop(
        "saxpy", saxpy, _saxpy_inputs,
        "scaled vector add, the independent-writes baseline",
        check_arrays=("y",),
    ),
    CorpusLoop(
        "gather", gather, _gather_inputs,
        "indirect read y[i] = x[idx[i]]",
        constructs=("subscripted-subscripts",),
        check_arrays=("y",),
    ),
    CorpusLoop(
        "scatter_perm", scatter_perm, _scatter_inputs,
        "permutation scatter: LRPD must pass at run time",
        constructs=("subscripted-subscripts",),
        check_arrays=("y",),
    ),
    CorpusLoop(
        "histogram", histogram, _histogram_inputs,
        "binned accumulation h[b[i]] += w[i] (array reduction)",
        constructs=("subscripted-subscripts", "reduction-idioms"),
        check_arrays=("h",),
    ),
    CorpusLoop(
        "sum_reduce", sum_reduce, _vector_inputs,
        "scalar += accumulation",
        constructs=("reduction-idioms",),
        returns=("s",),
    ),
    CorpusLoop(
        "dot", dot, _dot_inputs,
        "inner product through s += x[i]*y[i]",
        constructs=("reduction-idioms",),
        returns=("s",),
    ),
    CorpusLoop(
        "norm_temp", norm_temp, _norm_inputs,
        "reduction through a scalar temporary (the GSSA idiom, paper §IV)",
        constructs=("scalar-temporaries", "reduction-idioms"),
        returns=("s",),
    ),
    CorpusLoop(
        "relu_mask", relu_mask, _relu_inputs,
        "data-dependent if/else writing two arrays",
        constructs=("data-dependent-ifs",),
        check_arrays=("y", "m"),
    ),
    CorpusLoop(
        "threshold_count", threshold_count, _threshold_inputs,
        "guarded integer count (control-dependent scalar reduction)",
        constructs=("data-dependent-ifs", "reduction-idioms"),
        returns=("k",),
    ),
    CorpusLoop(
        "clip_temp", clip_temp, _clip_inputs,
        "clamp via a privatizable scalar temporary under two ifs",
        constructs=("data-dependent-ifs", "scalar-temporaries"),
        check_arrays=("y",),
    ),
    CorpusLoop(
        "window_sum", window_sum, _window_inputs,
        "sliding-window sum with an inner accumulation loop",
        constructs=("inner-loops", "scalar-temporaries"),
        check_arrays=("y",),
    ),
    CorpusLoop(
        "force_scatter", force_scatter, _force_inputs,
        "BDNA-style gather/scatter: inner loops feeding an indirect "
        "array reduction",
        constructs=(
            "inner-loops", "subscripted-subscripts",
            "scalar-temporaries", "reduction-idioms",
        ),
        check_arrays=("f",),
    ),
    CorpusLoop(
        "running_max", running_max, _vector_inputs,
        "max reduction seeded from the first element",
        constructs=("reduction-idioms",),
        returns=("m",),
    ),
    CorpusLoop(
        "spice_gate", spice_gate, _spice_inputs,
        "SPICE-style guarded indirect reduction through a temporary",
        constructs=(
            "subscripted-subscripts", "data-dependent-ifs",
            "scalar-temporaries", "reduction-idioms",
        ),
        check_arrays=("g",),
    ),
    CorpusLoop(
        "cumsum", cumsum, _cumsum_inputs,
        "true flow dependence: the LRPD test must fail and fall back",
        expect_pass=False,
        check_arrays=("y",),
    ),
    CorpusLoop(
        "decay_chain", decay_chain, _chain_inputs,
        "distance-k recurrence: fails LRPD, pipelines under DOACROSS "
        "recovery",
        expect_pass=False,
        check_arrays=("a",),
    ),
    # -- must-reject examples ------------------------------------------------
    CorpusLoop(
        "append_positive", append_positive, _vector_inputs,
        "list building is outside the array IR",
        reject_reason="unsupported-expression",
        expect_pass=None,
    ),
    CorpusLoop(
        "first_negative", first_negative, _vector_inputs,
        "early exit has no doall form",
        reject_reason="break-unsupported",
        expect_pass=None,
    ),
    CorpusLoop(
        "row_sums", row_sums, _rows_inputs,
        "2-D arrays are not yet lifted",
        reject_reason="multidim-array",
        expect_pass=None,
    ),
    CorpusLoop(
        "total", total, _xs_inputs,
        "direct iteration over values, not range()",
        reject_reason="iterator-not-range",
        expect_pass=None,
    ),
)

#: name -> :class:`CorpusLoop`, insertion-ordered.
CORPUS: dict[str, CorpusLoop] = {loop.name: loop for loop in _LOOPS}


def corpus_names(liftable: bool | None = None) -> list[str]:
    """Corpus loop names; filter to (non-)liftable with ``liftable``."""
    return [
        name
        for name, loop in CORPUS.items()
        if liftable is None or loop.liftable == liftable
    ]


def lift_corpus_loop(loop: CorpusLoop) -> LiftResult:
    """Run the python frontend over one corpus loop with fresh inputs."""
    return get_frontend("python").lift(loop.kernel, inputs=loop.make_inputs())


def run_native(loop: CorpusLoop) -> tuple[dict, dict]:
    """Execute the kernel directly in CPython on fresh inputs.

    Returns ``(arrays, scalars)``: every ndarray input in its final
    state, and the returned scalars keyed by :attr:`CorpusLoop.returns`.
    """
    inputs = loop.make_inputs()
    result = loop.kernel(**inputs)
    arrays = {
        name: value
        for name, value in inputs.items()
        if isinstance(value, np.ndarray)
    }
    if not loop.returns:
        return arrays, {}
    values = result if isinstance(result, tuple) else (result,)
    return arrays, dict(zip(loop.returns, values))


def build_corpus_workload(name: str) -> Workload:
    """Lift corpus loop ``name`` into a runnable :class:`Workload`.

    The workload's source is the lifted program's mini-Fortran rendering,
    so it flows through the catalog / serve daemon exactly like the seven
    paper loops.  Raises :class:`~repro.errors.WorkloadError` for unknown
    or deliberately-unliftable names.
    """
    loop = CORPUS.get(name)
    if loop is None:
        known = ", ".join(corpus_names(liftable=True))
        raise WorkloadError(f"unknown corpus loop {name!r}; known: {known}")
    result = lift_corpus_loop(loop)
    if not result:
        raise WorkloadError(
            f"corpus loop {name!r} does not lift: {result.decision.explain()}"
        )
    return Workload(
        name=f"corpus/{name}",
        source=result.source,
        inputs=result.inputs,
        description=loop.description,
        check_arrays=loop.check_arrays,
        check_scalars=tuple(f"{scalar}_out" for scalar in loop.returns),
    )
