"""SPICE / LOAD loop 40 — reductions through temporaries + linked list.

The circuit-matrix load loop: devices live on a linked list, and each
device stamps conductance contributions into the matrix/RHS through
private temporaries under mode-dependent control flow — the reduction
idiom that defeats syntactic pattern matching and motivates the paper's
forward-substitution recognizer (§IV; the paper notes this loop can be
70% of SPICE's sequential time).

The linked list is traversed *serially* into an order array before the
doall (the while-loop parallelization of [33]); that serial component
bounds the achievable speedup, matching the paper's modest SPICE numbers.
The evaluation harness charges the traversal to the loop's time.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PaperExpectation, Workload


def _source(n: int, m: int) -> str:
    return f"""
program spice_load
  integer n, i, p, mode, head, nlist
  real g({n}), v({n}), y({m}), rhs({m})
  integer nxt({n}), node1({n}), node2({n}), order({n})
  real t, gv
  ! serial traversal of the device linked list (while-loop technique [33])
  p = head
  i = 0
  do while (p > 0)
    i = i + 1
    order(i) = p
    p = nxt(p)
  end do
  nlist = i
  ! the load loop proper: a doall over the collected devices
  do i = 1, nlist
    p = order(i)
    gv = g(p) * v(node1(p))
    if (mode == 1) then
      t = y(node2(p)) + gv
    else
      t = y(node2(p)) - gv * 0.5
    end if
    y(node2(p)) = t
    rhs(node1(p)) = rhs(node1(p)) + gv * 0.25
  end do
end
"""


def build_spice(n: int = 700, m: int | None = None, mode: int = 1, seed: int = 0) -> Workload:
    """Build the SPICE-like workload with ``n`` devices on the list."""
    if m is None:
        m = n // 2
    rng = np.random.default_rng(seed)
    # A random singly linked list over all n devices.
    perm = rng.permutation(n) + 1
    nxt = np.zeros(n, dtype=np.int64)
    for a, b in zip(perm[:-1], perm[1:]):
        nxt[a - 1] = b
    nxt[perm[-1] - 1] = 0
    return Workload(
        name="SPICE_LOAD_do40",
        source=_source(n, m),
        inputs={
            "n": n,
            "head": int(perm[0]),
            "mode": mode,
            "nxt": nxt,
            "node1": rng.integers(1, m + 1, n),
            "node2": rng.integers(1, m + 1, n),
            "g": rng.normal(size=n),
            "v": rng.normal(size=n),
            "y": rng.normal(scale=0.1, size=m),
            "rhs": np.zeros(m),
        },
        expectation=PaperExpectation(
            transforms=("reduction",),
            inspector_extractable=True,
            test_passes=True,
            notes="reductions through temporaries and control flow; serial list traversal",
        ),
        description="device stamping through a linked list",
        check_arrays=("y", "rhs", "order"),
    )
