"""Parametric synthetic loops for the ablation and baseline experiments.

* :func:`build_dependence_injected` — a loop whose fraction of genuinely
  dependent iterations is a knob; drives the failure-cost experiment
  (speculation loses ≈ the attempt overhead when the test fails).
* :func:`build_hotspot_reduction` — reduction traffic concentrated on few
  elements, the situation motivating Chen/Yew/Torrellas [13].
* :func:`build_wavefront_chain` — a partially parallel loop with a known
  minimum wavefront depth, used to validate and time the related-work
  schedulers of Table II.
* :func:`build_conditional_dead_reads` — reads whose values are used only
  under a rare condition; separates the value-based LPD marking from the
  reference-based PD marking (ablation A-PD).
* :func:`build_partial_parallel` — a serial dependence band inside an
  otherwise parallel loop; the strip-mined pipeline's motivating case
  (all-or-nothing speculation fails the whole loop, strips only lose the
  band).
* :func:`build_synthdoacross` — every iteration depends on the one
  exactly ``distance`` back; fails the LRPD test everywhere but
  pipelines perfectly, the DOACROSS recovery tier's motivating case.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import PaperExpectation, Workload


def build_dependence_injected(
    n: int = 400, dep_fraction: float = 0.0, seed: int = 0
) -> Workload:
    """A gather/scatter loop with an injected fraction of flow dependences.

    Each iteration writes ``a(wloc(i))`` and reads ``a(rloc(i))``.  With
    ``dep_fraction == 0`` the read locations avoid every write location
    (test passes, fully parallel); a positive fraction points that many
    reads at *other iterations'* write locations (test fails).
    """
    if not 0.0 <= dep_fraction <= 1.0:
        raise WorkloadError("dep_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    size = 2 * n
    wloc = rng.permutation(n) + 1            # writes land in [1, n]
    rloc = rng.integers(n + 1, size + 1, n)  # reads land in (n, 2n]
    num_deps = int(round(dep_fraction * n))
    if num_deps:
        # Inject *flow* dependences: the victim reads an element written
        # by a strictly earlier iteration.  (A later writer would only be
        # an anti dependence, which copy-in privatization handles.)
        victims = rng.choice(np.arange(1, n), size=min(num_deps, n - 1), replace=False)
        for v in victims:
            earlier = int(rng.integers(0, v))
            rloc[v] = wloc[earlier]
    source = f"""
program dep_injected
  integer n, i
  real a({size}), src({n})
  integer wloc({n}), rloc({n})
  real t
  do i = 1, n
    t = a(rloc(i)) * 0.5 + src(i)
    a(wloc(i)) = t * t + 1.0
  end do
end
"""
    return Workload(
        name=f"SYNTH_DEPS_{int(dep_fraction * 100):03d}",
        source=source,
        inputs={
            "n": n,
            "wloc": wloc,
            "rloc": rloc,
            "a": rng.normal(size=size),
            "src": rng.normal(size=n),
        },
        expectation=PaperExpectation(
            transforms=(),
            inspector_extractable=True,
            test_passes=dep_fraction == 0.0,
        ),
        description=f"gather/scatter with {dep_fraction:.0%} injected dependences",
        check_arrays=("a",),
    )


def build_hotspot_reduction(
    n: int = 400, hot_fraction: float = 0.8, num_hot: int = 4, seed: int = 0
) -> Workload:
    """A sum reduction whose traffic concentrates on ``num_hot`` elements."""
    if not 0.0 <= hot_fraction <= 1.0:
        raise WorkloadError("hot_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    size = max(num_hot + 1, n // 4)
    target = np.where(
        rng.random(n) < hot_fraction,
        rng.integers(1, num_hot + 1, n),
        rng.integers(num_hot + 1, size + 1, n),
    )
    source = f"""
program hotspot
  integer n, i
  real acc({size}), val({n})
  integer target({n})
  do i = 1, n
    acc(target(i)) = acc(target(i)) + val(i) * val(i)
  end do
end
"""
    return Workload(
        name=f"SYNTH_HOTSPOT_{int(hot_fraction * 100):03d}",
        source=source,
        inputs={"n": n, "target": target, "val": rng.normal(size=n)},
        expectation=PaperExpectation(
            transforms=("reduction",), inspector_extractable=True, test_passes=True
        ),
        description=f"{hot_fraction:.0%} of reduction traffic on {num_hot} elements",
        check_arrays=("acc",),
    )


def build_wavefront_chain(
    n: int = 240,
    num_chains: int = 8,
    *,
    scramble: bool = False,
    shared_read: bool = False,
    seed: int = 0,
) -> Workload:
    """A partially parallel loop with known minimum schedule depth.

    Iterations form ``num_chains`` disjoint flow-dependence chains over
    elements of ``a`` (iteration ``i`` reads the element written by its
    chain predecessor), so the minimal wavefront schedule has exactly
    ``ceil(n / num_chains)`` stages.  The LRPD test fails on it (by
    design — it is not a doall); the Table II baselines schedule it.

    ``scramble`` spreads each chain's iterations randomly over the
    iteration space (chain order still increasing) — this is what makes
    contiguous-block scheduling (Polychronopoulos) and sectioned
    inspectors (Leung/Zahorjan) visibly suboptimal.  ``shared_read`` adds
    one read-only hot element read by every iteration, which serializes
    the methods that treat concurrent reads as conflicts (Zhu/Yew,
    Chen/Yew/Torrellas).
    """
    if num_chains < 1 or num_chains > n:
        raise WorkloadError("need 1 <= num_chains <= n")
    rng = np.random.default_rng(seed)
    size = 2 * n + 1
    hot = size  # last element: read-only hot spot
    wloc = np.zeros(n, dtype=np.int64)
    rloc = np.zeros(n, dtype=np.int64)
    cells = iter(rng.permutation(2 * n) + 1)

    if scramble:
        perm = rng.permutation(n)
        chains = [np.sort(perm[c::num_chains]) for c in range(num_chains)]
    else:
        chains = [np.arange(c, n, num_chains) for c in range(num_chains)]

    for chain in chains:
        prev_cell = None
        for it in chain:
            cell = next(cells)
            rloc[it] = prev_cell if prev_cell is not None else next(cells)
            wloc[it] = cell
            prev_cell = cell

    if shared_read:
        body = "    a(wloc(i)) = a(rloc(i)) * 0.9 + src(i) + a(hot) * 0.001"
        extra_decl = "  integer hot"
    else:
        body = "    a(wloc(i)) = a(rloc(i)) * 0.9 + src(i)"
        extra_decl = ""
    source = f"""
program wavefront
  integer n, i
{extra_decl}
  real a({size}), src({n})
  integer wloc({n}), rloc({n})
  do i = 1, n
{body}
  end do
end
"""
    inputs = {
        "n": n,
        "wloc": wloc,
        "rloc": rloc,
        "a": rng.normal(size=size),
        "src": rng.normal(size=n),
    }
    if shared_read:
        inputs["hot"] = hot
    return Workload(
        name=f"SYNTH_WAVEFRONT_{num_chains}",
        source=source,
        inputs=inputs,
        expectation=PaperExpectation(
            transforms=(), inspector_extractable=True, test_passes=False
        ),
        description=f"{num_chains} flow-dependence chains (partially parallel)",
        check_arrays=("a",),
    )


def build_blocked_chain(n: int = 240, seed: int = 0) -> Workload:
    """Pairwise forward dependences: iteration ``2k+1`` reads what ``2k``
    wrote.

    Fails the iteration-wise test (a genuine cross-iteration flow) but
    passes the *processor-wise* test whenever block scheduling keeps each
    pair on one processor (even block sizes) — the Appendix A.1 ablation.
    ``n`` should be chosen so the interesting processor counts divide it
    evenly.
    """
    if n % 2:
        raise WorkloadError("build_blocked_chain needs an even n")
    rng = np.random.default_rng(seed)
    cells = rng.permutation(2 * n) + 1
    wloc = np.zeros(n, dtype=np.int64)
    rloc = np.zeros(n, dtype=np.int64)
    for k in range(n // 2):
        first, second = 2 * k, 2 * k + 1
        wloc[first] = cells[2 * k]
        rloc[first] = cells[n + 2 * k]      # fresh, never-written cell
        rloc[second] = wloc[first]           # reads its pair's write
        wloc[second] = cells[2 * k + 1]
    source = f"""
program blocked_chain
  integer n, i
  real a({2 * n}), src({n})
  integer wloc({n}), rloc({n})
  do i = 1, n
    a(wloc(i)) = a(rloc(i)) * 0.5 + src(i)
  end do
end
"""
    return Workload(
        name="SYNTH_BLOCKED_CHAIN",
        source=source,
        inputs={
            "n": n,
            "wloc": wloc,
            "rloc": rloc,
            "a": rng.normal(size=2 * n),
            "src": rng.normal(size=n),
        },
        expectation=PaperExpectation(
            transforms=(), inspector_extractable=True, test_passes=False
        ),
        description="pairwise forward dependences (processor-wise ablation)",
        check_arrays=("a",),
    )


def build_conditional_dead_reads(
    n: int = 300, live_fraction: float = 0.0, seed: int = 0
) -> Workload:
    """Reads whose values matter only when a rare condition holds.

    Every iteration reads ``a(rloc(i))`` into a private scalar but stores
    it to shared state only when ``gate(i)`` is set; the read locations
    intersect the write locations.  Reference-based (PD) marking marks
    every read and fails; value-based (LPD) marking marks only the gated
    uses, so with ``live_fraction == 0`` the loop passes — the paper's
    PD-vs-LPD distinction in its purest form.
    """
    if not 0.0 <= live_fraction <= 1.0:
        raise WorkloadError("live_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    size = n
    wloc = rng.permutation(n) + 1
    rloc = np.roll(wloc, 1)  # reads hit other iterations' write locations
    gate = (rng.random(n) < live_fraction).astype(np.int64)
    source = f"""
program dead_reads
  integer n, i
  real a({size}), out({n}), src({n})
  integer wloc({n}), rloc({n}), gate({n})
  real t
  do i = 1, n
    t = a(rloc(i)) * 2.0
    a(wloc(i)) = src(i) * src(i)
    if (gate(i) == 1) then
      out(i) = t
    end if
  end do
end
"""
    return Workload(
        name=f"SYNTH_DEADREADS_{int(live_fraction * 100):03d}",
        source=source,
        inputs={
            "n": n,
            "wloc": wloc,
            "rloc": rloc,
            "gate": gate,
            "a": rng.normal(size=size),
            "src": rng.normal(size=n),
        },
        expectation=PaperExpectation(
            transforms=(),
            inspector_extractable=True,
            test_passes=live_fraction == 0.0,
        ),
        description=f"conditionally used reads, {live_fraction:.0%} live",
        check_arrays=("a", "out"),
    )


def build_partial_parallel(
    n: int = 400,
    *,
    band_start: int | None = None,
    band_length: int = 24,
    work: int = 60,
    seed: int = 0,
) -> Workload:
    """A *partially parallel* loop: one serial dependence band in an
    otherwise fully parallel gather/scatter iteration space.

    Iterations in ``[band_start, band_start + band_length)`` form a
    serial flow chain — each reads the element the previous one wrote —
    while every other iteration writes and reads disjoint locations.
    The all-or-nothing speculative protocol fails the whole loop on the
    band and falls back to serial (speedup ≤ 1); the strip-mined
    pipeline only rolls back the strip(s) containing the band and keeps
    the parallel regions' speedup.  ``work`` fattens each iteration with
    an inner busy loop so per-strip overheads (checkpoint, barrier,
    analysis) stay small relative to the body, as in the paper's
    coarse-grained loops.
    """
    if band_length < 2 or band_length > n:
        raise WorkloadError("need 2 <= band_length <= n")
    if band_start is None:
        band_start = (n - band_length) // 2
    if not (0 <= band_start <= n - band_length):
        raise WorkloadError("band must fit inside the iteration space")
    rng = np.random.default_rng(seed)
    size = 2 * n
    wloc = rng.permutation(n) + 1            # writes land in [1, n]
    rloc = rng.integers(n + 1, size + 1, n)  # reads land in (n, 2n]
    # The band: iteration v (0-based) reads what iteration v-1 wrote.
    for v in range(band_start + 1, band_start + band_length):
        rloc[v] = wloc[v - 1]
    source = f"""
program partial_parallel
  integer n, i, k, work
  real a({size}), src({n})
  integer wloc({n}), rloc({n})
  real t
  do i = 1, n
    t = src(i)
    do k = 1, work
      t = t * 0.999 + 0.001
    end do
    t = t + a(rloc(i)) * 0.5
    a(wloc(i)) = t * t + 1.0
  end do
end
"""
    return Workload(
        name=f"SYNTH_PARTIAL_{band_length:03d}of{n}",
        source=source,
        inputs={
            "n": n,
            "work": work,
            "wloc": wloc,
            "rloc": rloc,
            "a": rng.normal(size=size),
            "src": rng.normal(size=n),
        },
        expectation=PaperExpectation(
            transforms=(),
            inspector_extractable=True,
            test_passes=False,
            notes="partially parallel: fails whole-loop, profits stripped",
        ),
        description=(
            f"gather/scatter with a {band_length}-iteration serial band "
            f"at {band_start} (work={work})"
        ),
        check_arrays=("a",),
    )


def build_synthdoacross(
    n: int = 400,
    *,
    distance: int = 32,
    work: int = 60,
    seed: int = 0,
) -> Workload:
    """A uniform-distance DOACROSS loop: iteration ``v`` reads what
    iteration ``v - distance`` wrote.

    Every write location is distinct (one write per element) and every
    iteration from ``distance`` on reads its predecessor-at-distance's
    write location, so the loop carries a flow dependence on *every*
    chain — the LRPD test fails it outright, whole-loop and in any strip
    wider than ``distance``.  But the minimum (indeed the only)
    cross-iteration distance is exactly ``distance``: the shadow stamps
    measure it, and the recovery tier's chunked post/wait pipeline
    overlaps up to ``distance`` iterations at a time.  The first
    ``distance`` iterations read fresh, never-written cells in
    ``(n, 2n]``.  ``work`` fattens the body so sync overheads stay small
    relative to the iterations, as in the paper's coarse-grained loops.
    """
    if distance < 2 or distance >= n:
        raise WorkloadError("need 2 <= distance < n")
    rng = np.random.default_rng(seed)
    size = 2 * n
    wloc = rng.permutation(n) + 1            # writes land in [1, n]
    rloc = rng.integers(n + 1, size + 1, n)  # reads land in (n, 2n]
    for v in range(distance, n):
        rloc[v] = wloc[v - distance]
    source = f"""
program synthdoacross
  integer n, i, k, work
  real a({size}), src({n})
  integer wloc({n}), rloc({n})
  real t
  do i = 1, n
    t = src(i)
    do k = 1, work
      t = t * 0.999 + 0.001
    end do
    t = t + a(rloc(i)) * 0.5
    a(wloc(i)) = t * t + 1.0
  end do
end
"""
    return Workload(
        name=f"SYNTH_DOACROSS_{distance:03d}",
        source=source,
        inputs={
            "n": n,
            "work": work,
            "wloc": wloc,
            "rloc": rloc,
            "a": rng.normal(size=size),
            "src": rng.normal(size=n),
        },
        expectation=PaperExpectation(
            transforms=(),
            inspector_extractable=True,
            test_passes=False,
            notes=(
                "uniform-distance DOACROSS: fails the LRPD test, "
                "pipelines at the measured distance"
            ),
        ),
        description=(
            f"uniform flow dependence at distance {distance} "
            f"(work={work})"
        ),
        check_arrays=("a",),
    )
