"""TRACK / NLFILT_do300 — speculative-only privatized doall.

The defining feature (paper §V): the addresses of the conditional writes
are computed *through storage the loop itself writes* — here, the work
area ``iw`` is read at positions the loop never writes (a pre-initialized
permutation region) but the compiler cannot see that, and the inspector
cannot replay the address computation without executing the loop's
stores.  The paper consequently evaluates TRACK in speculative mode only;
:func:`repro.analysis.instrument.build_plan` reaches the same verdict.

The loop is, dynamically, a doall after privatizing the small work array
``w``: every ``out`` element is written by exactly one iteration (``iw``'s
read region holds a permutation).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PaperExpectation, Workload


def _source(n: int) -> str:
    return f"""
program track_nlfilt
  integer n, i, k
  real data({n}), out({2 * n}), w(8)
  integer iw({2 * n})
  real thresh
  do i = 1, n
    ! the write position flows through iw: read before any write to iw
    k = iw(n + i)
    iw(i) = k
    w(1) = data(i) * 0.5
    w(2) = w(1) + data(i) * data(i)
    w(3) = sqrt(abs(w(2)) + 1.0)
    w(4) = w(3) * w(1) + exp(0.0 - abs(w(1)))
    if (data(i) > thresh) then
      out(k) = w(4) + w(2)
    else
      out(k) = w(4) - w(2) * 0.25
    end if
  end do
end
"""


def build_track(n: int = 600, seed: int = 0) -> Workload:
    """Build the TRACK-like workload with ``n`` tracks."""
    rng = np.random.default_rng(seed)
    iw = np.zeros(2 * n, dtype=np.int64)
    # The read region [n+1 .. 2n] holds n distinct targets drawn from
    # [1 .. 2n]: every ``out`` element is written by at most one iteration.
    iw[n:] = (rng.permutation(2 * n) + 1)[:n]
    data = rng.normal(size=n)
    return Workload(
        name="TRACK_NLFILT_do300",
        source=_source(n),
        inputs={"n": n, "iw": iw, "data": data, "thresh": 0.0},
        expectation=PaperExpectation(
            transforms=("privatization",),
            inspector_extractable=False,
            test_passes=True,
            notes="addresses computed by the loop; speculative mode only",
        ),
        description="conditional writes at positions read from loop-written storage",
        check_arrays=("out", "iw"),
    )
