"""Affine subscript extraction tests."""

import pytest

from repro.analysis.affine import Affine, affine_of
from repro.dsl.parser import parse
from repro.dsl.ast_nodes import Assign


def subscript(expr_text, decls="integer i, k\n  real a(100)"):
    program = parse(
        f"program t\n  {decls}\n  a({expr_text}) = 0.0\nend\n"
    )
    stmt = program.body[0]
    assert isinstance(stmt, Assign)
    return stmt.target.index


@pytest.mark.parametrize(
    "text,coef,const",
    [
        ("i", 1, 0),
        ("5", 0, 5),
        ("i + 3", 1, 3),
        ("3 + i", 1, 3),
        ("i - 2", 1, -2),
        ("2 * i", 2, 0),
        ("i * 2", 2, 0),
        ("2 * i + 7", 2, 7),
        ("-i", -1, 0),
        ("-(2 * i - 1)", -2, 1),
        ("4 - i", -1, 4),
        ("i + i", 2, 0),
        ("3 * (i + 1)", 3, 3),
    ],
)
def test_affine_forms(text, coef, const):
    assert affine_of(subscript(text), "i") == Affine(coef, const)


@pytest.mark.parametrize(
    "text",
    [
        "k",              # a scalar the compiler does not know
        "i * i",          # nonlinear
        "i * k",          # symbolic coefficient
        "a(i)",           # subscripted subscript
        "mod(i, 4)",      # intrinsic
        "i / 2",          # division is not affine extraction
    ],
)
def test_non_affine_forms(text):
    assert affine_of(subscript(text), "i") is None


def test_real_literal_not_affine():
    # A 2.0 literal cannot be an integer-affine constant.
    assert affine_of(subscript("i + 1"), "i") is not None
    program = parse("program t\n  integer i\n  real a(10)\n  a(int(2.0)) = 0.0\nend\n")
    assert affine_of(program.body[0].target.index, "i") is None


def test_affine_evaluation():
    form = Affine(coef=3, const=-2)
    assert form.at(1) == 1
    assert form.at(10) == 28
