"""Scalar classification and transform planning tests."""

from repro.analysis.classify import ScalarClass, plan_transforms
from repro.analysis.instrument import number_refs
from repro.analysis.reduction import find_reductions
from repro.analysis.symtab import summarize_body
from repro.dsl.parser import parse
from repro.interp.interpreter import find_target_loop


def planned(source):
    program = parse(source)
    number_refs(program)
    loop = find_target_loop(program)
    written = set(summarize_body(loop.body).arrays_written)
    reductions = find_reductions(loop, written)
    return plan_transforms(loop, reductions), loop, reductions


class TestScalarClassification:
    def test_loop_var(self):
        plan, loop, _ = planned(
            "program p\n  integer i, n\n  real a(10)\n"
            "  do i = 1, n\n    a(i) = 1.0\n  end do\nend\n"
        )
        assert plan.scalar_classes["i"] is ScalarClass.LOOP_VAR

    def test_read_only(self):
        plan, _, _ = planned(
            "program p\n  integer i, n\n  real c, a(10)\n"
            "  do i = 1, n\n    a(i) = c\n  end do\nend\n"
        )
        assert plan.scalar_classes["c"] is ScalarClass.READ_ONLY

    def test_private(self):
        plan, _, _ = planned(
            "program p\n  integer i, n\n  real t, a(10)\n"
            "  do i = 1, n\n    t = a(i)\n    a(i) = t * 2.0\n  end do\nend\n"
        )
        assert plan.scalar_classes["t"] is ScalarClass.PRIVATE

    def test_reduction(self):
        plan, _, _ = planned(
            "program p\n  integer i, n\n  real s, a(10)\n"
            "  do i = 1, n\n    s = s + a(i)\n  end do\nend\n"
        )
        assert plan.scalar_classes["s"] is ScalarClass.REDUCTION

    def test_carried(self):
        plan, _, _ = planned(
            "program p\n  integer i, n\n  real s, a(10)\n"
            "  do i = 1, n\n    a(i) = s\n    s = a(i) * 2.0\n  end do\nend\n"
        )
        assert plan.scalar_classes["s"] is ScalarClass.CARRIED
        assert "s" in plan.carried_scalars


class TestArrayPlanning:
    def test_affine_disjoint_array_statically_safe(self):
        plan, _, _ = planned(
            "program p\n  integer i, n\n  real a(10), b(10)\n"
            "  do i = 1, n\n    a(i) = b(i)\n  end do\nend\n"
        )
        assert plan.arrays["a"].statically_safe
        assert not plan.arrays["a"].tested
        assert not plan.arrays["b"].written

    def test_indirection_tested(self):
        plan, _, _ = planned(
            "program p\n  integer i, n, idx(10)\n  real a(10)\n"
            "  do i = 1, n\n    a(idx(i)) = 1.0\n  end do\nend\n"
        )
        assert plan.arrays["a"].tested
        assert "a" in plan.tested_arrays

    def test_pure_affine_reduction_statically_safe(self):
        plan, _, _ = planned(
            "program p\n  integer i, n\n  real a(10), v(10)\n"
            "  do i = 1, n\n    a(i) = a(i) + v(i)\n  end do\nend\n"
        )
        # Recognized as a reduction AND affine: no run-time test needed...
        # but note a(i) = a(i) + v(i) with identical subscripts is already
        # proven safe by the dependence test, whichever path triggers.
        assert plan.arrays["a"].statically_safe

    def test_non_affine_reduction_tested(self):
        plan, _, _ = planned(
            "program p\n  integer i, n, idx(10)\n  real a(10), v(10)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) + v(i)\n  end do\nend\n"
        )
        assert plan.arrays["a"].tested
        assert "a" in plan.reduction_arrays

    def test_mixed_redux_and_plain_refs_tested(self):
        plan, _, _ = planned(
            "program p\n  integer i, n, idx(10), jdx(10)\n  real a(10), v(10)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) + v(i)\n"
            "    a(jdx(i)) = 0.0\n  end do\nend\n"
        )
        assert plan.arrays["a"].tested
        assert plan.arrays["a"].has_reduction_refs
        assert plan.arrays["a"].has_non_reduction_writes

    def test_shifted_affine_not_safe(self):
        plan, _, _ = planned(
            "program p\n  integer i, n\n  real a(12)\n"
            "  do i = 2, n\n    a(i) = a(i - 1)\n  end do\nend\n"
        )
        assert plan.arrays["a"].tested

    def test_written_arrays_property(self):
        plan, _, _ = planned(
            "program p\n  integer i, n\n  real a(10), b(10)\n"
            "  do i = 1, n\n    a(i) = b(i)\n  end do\nend\n"
        )
        assert plan.written_arrays == {"a"}
