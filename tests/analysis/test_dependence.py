"""Static dependence testing (GCD / Banerjee / loop verdict)."""


from repro.analysis.affine import Affine
from repro.analysis.dependence import (
    StaticVerdict,
    analyze_loop_statically,
    banerjee_test,
    cross_iteration_solution_exists,
    gcd_test,
    may_cross_depend,
)
from repro.dsl.parser import parse
from repro.interp.interpreter import find_target_loop


def verdict(source, trip_count=None):
    program = parse(source)
    loop = find_target_loop(program)
    return analyze_loop_statically(loop, trip_count=trip_count)


class TestGcd:
    def test_gcd_allows_when_divisible(self):
        # 2i = 2j + 4 has integer solutions.
        assert gcd_test(Affine(2, 0), Affine(2, 4))

    def test_gcd_refutes_when_not_divisible(self):
        # 2i = 2j + 1: parity mismatch.
        assert not gcd_test(Affine(2, 0), Affine(2, 1))

    def test_gcd_constant_subscripts(self):
        assert gcd_test(Affine(0, 3), Affine(0, 3))
        assert not gcd_test(Affine(0, 3), Affine(0, 4))


class TestBanerjee:
    def test_banerjee_refutes_disjoint_ranges(self):
        # i and i + 100 never meet for i in [1, 50].
        assert not banerjee_test(Affine(1, 0), Affine(1, 100), n=50)

    def test_banerjee_allows_overlap(self):
        assert banerjee_test(Affine(1, 0), Affine(1, 10), n=50)


class TestExactOracle:
    def test_same_subscript_never_cross(self):
        assert not cross_iteration_solution_exists(Affine(1, 0), Affine(1, 0), 20)

    def test_shifted_subscript_crosses(self):
        assert cross_iteration_solution_exists(Affine(1, 0), Affine(1, 1), 20)

    def test_constant_vs_affine(self):
        # a(3) and a(i): i == 3 for any other iteration -> cross.
        assert cross_iteration_solution_exists(Affine(0, 3), Affine(1, 0), 20)


class TestMayCrossDepend:
    def test_identical_injective_subscripts_safe(self):
        assert not may_cross_depend(Affine(1, 0), Affine(1, 0), None)

    def test_shift_conflicts(self):
        assert may_cross_depend(Affine(1, 0), Affine(1, 1), None)

    def test_strided_parity_disjoint(self):
        assert not may_cross_depend(Affine(2, 0), Affine(2, 1), None)

    def test_exact_check_used_for_small_bounds(self):
        # 3i and 5j meet at 15 with i=5, j=3 <= 10.
        assert may_cross_depend(Affine(3, 0), Affine(5, 0), 10)
        # ... but not within 2 iterations.
        assert not may_cross_depend(Affine(3, 0), Affine(5, 0), 2)

    def test_conservative_against_oracle(self):
        # may_cross_depend must never be False when a solution exists.
        for ac in range(-3, 4):
            for bc in range(-3, 4):
                for aconst in range(0, 5):
                    a, b = Affine(ac, aconst), Affine(bc, 2)
                    if cross_iteration_solution_exists(a, b, 8):
                        assert may_cross_depend(a, b, 8)


class TestLoopVerdicts:
    def test_independent_affine_loop_parallel(self):
        source = (
            "program p\n  integer i, n\n  real a(100), b(100)\n"
            "  do i = 1, n\n    a(i) = b(i) * 2.0\n  end do\nend\n"
        )
        assert verdict(source).verdict is StaticVerdict.PARALLEL

    def test_shifted_read_not_parallel(self):
        source = (
            "program p\n  integer i, n\n  real a(100)\n"
            "  do i = 2, n\n    a(i) = a(i - 1) + 1.0\n  end do\nend\n"
        )
        assert verdict(source, trip_count=50).verdict is StaticVerdict.NOT_PARALLEL

    def test_subscripted_subscript_unknown(self):
        source = (
            "program p\n  integer i, n, idx(100)\n  real a(100)\n"
            "  do i = 1, n\n    a(idx(i)) = 1.0\n  end do\nend\n"
        )
        report = verdict(source)
        assert report.verdict is StaticVerdict.UNKNOWN
        assert "a" in report.unknown_subscripts

    def test_loop_carried_scalar_not_parallel(self):
        source = (
            "program p\n  integer i, n\n  real s, a(100)\n"
            "  do i = 1, n\n    a(i) = s\n    s = a(i) + 1.0\n  end do\nend\n"
        )
        report = verdict(source)
        assert report.verdict is StaticVerdict.NOT_PARALLEL
        assert "s" in report.carried_scalars

    def test_private_scalar_ok(self):
        source = (
            "program p\n  integer i, n\n  real t, a(100), b(100)\n"
            "  do i = 1, n\n    t = b(i) * 2.0\n    a(i) = t\n  end do\nend\n"
        )
        assert verdict(source).verdict is StaticVerdict.PARALLEL

    def test_reduction_statements_excluded_when_given(self):
        source = (
            "program p\n  integer i, n, idx(100)\n  real a(100)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) + 1.0\n  end do\nend\n"
        )
        program = parse(source)
        loop = find_target_loop(program)
        stmt_ids = frozenset(id(s) for s in loop.body)
        report = analyze_loop_statically(loop, reduction_stmt_ids=stmt_ids)
        assert report.verdict is StaticVerdict.PARALLEL

    def test_explain_mentions_arrays(self):
        source = (
            "program p\n  integer i, n, idx(100)\n  real a(100)\n"
            "  do i = 1, n\n    a(idx(i)) = 1.0\n  end do\nend\n"
        )
        assert "a" in verdict(source).explain()
