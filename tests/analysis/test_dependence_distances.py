"""Unit tests for run-time dependence-distance extraction.

These drive :func:`measure_shadow_distances` directly over hand-marked
shadow arrays, so each directional-stamp case (exact flow, exact anti,
straddle, multi-write, reduction mixes) is pinned down in isolation from
the interpreter.
"""

from __future__ import annotations

from repro.analysis.dependence import (
    DepKind,
    DistanceReport,
    ElementDistance,
    measure_shadow_distances,
)
from repro.core.shadow import ShadowMarker


def _marker(n: int = 16) -> ShadowMarker:
    return ShadowMarker({"a": n})


def _only(report: DistanceReport) -> ElementDistance:
    assert len(report.distances) == 1, report.distances
    return report.distances[0]


class TestElementCases:
    def test_clean_shadows_measure_nothing(self):
        marker = _marker()
        report = measure_shadow_distances(marker, 8)
        assert report.min_distance is None
        assert not report.pipelinable()
        assert report.multi_written == 0
        assert report.explain() == "no cross-iteration dependence measured"

    def test_exact_flow_distance(self):
        marker = _marker()
        sh = marker.shadows["a"]
        sh.mark_write(3, 2)
        sh.mark_read(3, 7)
        entry = _only(measure_shadow_distances(marker, 8))
        assert entry.kind is DepKind.FLOW
        assert entry.distance == 5
        assert entry.exact

    def test_flow_distance_is_min_over_readers(self):
        marker = _marker()
        sh = marker.shadows["a"]
        sh.mark_write(0, 1)
        sh.mark_read(0, 4)
        sh.mark_read(0, 9)
        entry = _only(measure_shadow_distances(marker, 10))
        assert entry.kind is DepKind.FLOW
        assert entry.distance == 3
        assert entry.exact

    def test_exact_anti_distance(self):
        marker = _marker()
        sh = marker.shadows["a"]
        sh.mark_read(5, 1)
        sh.mark_read(5, 3)
        sh.mark_write(5, 6)
        entry = _only(measure_shadow_distances(marker, 8))
        assert entry.kind is DepKind.ANTI
        # write at 6, latest exposed read at 3
        assert entry.distance == 3
        assert entry.exact

    def test_reads_straddling_write_are_lower_bound_one(self):
        marker = _marker()
        sh = marker.shadows["a"]
        sh.mark_read(2, 0)   # exposed read before the write...
        sh.mark_write(2, 4)
        sh.mark_read(2, 7)   # ...and after it: stamps can't separate
        entry = _only(measure_shadow_distances(marker, 8))
        assert entry.kind is DepKind.FLOW
        assert entry.distance == 1
        assert not entry.exact

    def test_multi_write_is_output_distance_one(self):
        marker = _marker()
        sh = marker.shadows["a"]
        sh.mark_write(9, 1)
        sh.mark_write(9, 5)
        report = measure_shadow_distances(marker, 8)
        entry = _only(report)
        assert entry.kind is DepKind.OUTPUT
        assert entry.distance == 1
        assert not entry.exact
        assert report.multi_written == 1

    def test_reduction_ordinary_mix_is_flow_distance_one(self):
        marker = _marker()
        sh = marker.shadows["a"]
        sh.mark_redux(4, 1, "+")
        sh.mark_write(4, 6)  # ordinary write invalidates the reduction
        entries = measure_shadow_distances(marker, 8).distances
        assert any(
            e.kind is DepKind.FLOW and e.distance == 1 and not e.exact
            for e in entries
        )

    def test_consistent_reduction_is_skipped(self):
        marker = _marker()
        sh = marker.shadows["a"]
        for g in (0, 2, 5):
            sh.mark_redux(6, g, "+")
        report = measure_shadow_distances(marker, 8)
        assert report.min_distance is None

    def test_same_granule_rmw_is_not_a_dependence(self):
        marker = _marker()
        sh = marker.shadows["a"]
        sh.mark_write(1, 3)
        sh.mark_read(1, 3)  # covered by the same granule's write
        report = measure_shadow_distances(marker, 8)
        assert report.min_distance is None

    def test_single_granule_touch_is_skipped(self):
        marker = _marker()
        sh = marker.shadows["a"]
        sh.mark_read(7, 2)
        sh.mark_write(7, 2)
        sh.mark_write(8, 4)  # write-only element, one granule
        report = measure_shadow_distances(marker, 8)
        # the exposed read at granule 2 precedes its own write: anti of 0
        # would be same-granule, so nothing cross-iteration is recorded
        assert all(e.distance >= 1 for e in report.distances)


class TestReport:
    def _flow(self, marker: ShadowMarker, element: int, w: int, r: int) -> None:
        marker.shadows["a"].mark_write(element, w)
        marker.shadows["a"].mark_read(element, r)

    def test_min_distance_over_elements(self):
        marker = _marker()
        self._flow(marker, 0, 1, 9)
        self._flow(marker, 1, 2, 5)
        report = measure_shadow_distances(marker, 10)
        assert report.min_distance == 3
        assert report.pipelinable()

    def test_distance_one_is_not_pipelinable(self):
        marker = _marker()
        self._flow(marker, 0, 3, 4)
        report = measure_shadow_distances(marker, 8)
        assert report.min_distance == 1
        assert not report.pipelinable()

    def test_distance_two_is_pipelinable(self):
        marker = _marker()
        self._flow(marker, 0, 3, 5)
        assert measure_shadow_distances(marker, 8).pipelinable()

    def test_explain_names_tightest_element(self):
        marker = _marker()
        self._flow(marker, 0, 1, 9)
        self._flow(marker, 4, 2, 5)
        text = measure_shadow_distances(marker, 10).explain()
        assert "min dependence distance 3" in text
        assert "a[4]" in text
        assert "(exact)" in text
        assert "2 dependent element(s)" in text

    def test_explain_flags_lower_bound(self):
        marker = _marker()
        sh = marker.shadows["a"]
        sh.mark_write(2, 0)
        sh.mark_write(2, 3)
        text = measure_shadow_distances(marker, 8).explain()
        assert "(lower bound)" in text
        assert "1 multiply written" in text

    def test_multiple_arrays_merge(self):
        marker = ShadowMarker({"a": 8, "b": 8})
        marker.shadows["a"].mark_write(0, 0)
        marker.shadows["a"].mark_read(0, 6)
        marker.shadows["b"].mark_write(3, 1)
        marker.shadows["b"].mark_read(3, 3)
        report = measure_shadow_distances(marker, 8)
        assert {e.array for e in report.distances} == {"a", "b"}
        assert report.min_distance == 2
