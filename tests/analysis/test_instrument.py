"""Instrumentation plan tests: ref numbering, slices, inspector verdicts."""

import pytest

from repro.analysis.instrument import build_plan, number_refs, require_inspector
from repro.dsl.ast_nodes import ArrayRef, walk_expressions
from repro.dsl.parser import parse
from repro.errors import InspectorNotExtractable


def plan_for(source, trip_count=None):
    return build_plan(parse(source), trip_count=trip_count)


class TestNumberRefs:
    def test_all_refs_numbered_uniquely(self):
        program = parse(
            "program p\n  integer i, n, idx(10)\n  real a(10), b(10)\n"
            "  do i = 1, n\n    a(idx(i)) = b(i) + a(i)\n  end do\nend\n"
        )
        count = number_refs(program)
        seen = set()
        for stmt in program.body:
            pass
        from repro.analysis.instrument import _walk_program, _stmt_expr_roots

        for stmt in _walk_program(program.body):
            for root in _stmt_expr_roots(stmt):
                for node in walk_expressions(root):
                    if isinstance(node, ArrayRef):
                        assert node.ref_id >= 0
                        assert node.ref_id not in seen
                        seen.add(node.ref_id)
        assert len(seen) == count == 4


class TestPlanContents:
    SOURCE = (
        "program p\n  integer i, n, idx(10)\n  real a(10), b(10), t\n"
        "  n = 10\n"
        "  do i = 1, n\n    t = b(i)\n    a(idx(i)) = t\n  end do\n"
        "  t = t + 1.0\nend\n"
    )

    def test_tested_and_checkpoint(self):
        plan = plan_for(self.SOURCE)
        assert plan.tested_arrays == {"a"}
        assert plan.checkpoint_arrays == {"a"}

    def test_live_out_scalars(self):
        plan = plan_for(self.SOURCE)
        assert "t" in plan.live_out_scalars

    def test_summary_mentions_everything(self):
        text = plan_for(self.SOURCE).summary()
        assert "tested=['a']" in text
        assert "static=" in text

    def test_parallelizable_scalars_flag(self):
        carried = (
            "program p\n  integer i, n\n  real s, a(10)\n"
            "  do i = 1, n\n    a(i) = s\n    s = a(i) + 1.0\n  end do\nend\n"
        )
        assert not plan_for(carried).parallelizable_scalars
        assert plan_for(self.SOURCE).parallelizable_scalars


class TestInspectorExtraction:
    def test_plain_indirection_extractable(self):
        plan = plan_for(
            "program p\n  integer i, n, idx(10)\n  real a(10)\n"
            "  do i = 1, n\n    a(idx(i)) = 1.0\n  end do\nend\n"
        )
        assert plan.inspector_extractable
        assert plan.inspector_recompute_arrays == frozenset()

    def test_work_array_recomputed(self):
        plan = plan_for(
            "program p\n  integer i, j, n, m, ind(4), nbr(40)\n  real a(40)\n"
            "  do i = 1, n\n    do j = 1, m\n      ind(j) = nbr(j)\n"
            "      a(ind(j)) = 1.0\n    end do\n  end do\nend\n"
        )
        assert plan.inspector_extractable
        assert "ind" in plan.inspector_recompute_arrays

    def test_cross_iteration_address_blocks_inspector(self):
        # Addresses read from a region the loop writes (TRACK situation).
        plan = plan_for(
            "program p\n  integer i, k, n, iw(20)\n  real out(20)\n"
            "  do i = 1, n\n    k = iw(n + i)\n    iw(i) = k\n"
            "    out(k) = 1.0\n  end do\nend\n"
        )
        assert not plan.inspector_extractable
        assert plan.inspector_obstacles
        with pytest.raises(InspectorNotExtractable):
            require_inspector(plan)

    def test_order_dependent_scalar_blocks_inspector(self):
        plan = plan_for(
            "program p\n  integer i, n\n  real s, out(100), v(10)\n"
            "  do i = 1, n\n    s = s + v(i)\n"
            "    out(int(s) + i) = 1.0\n  end do\nend\n"
        )
        assert not plan.inspector_extractable

    def test_slice_contains_address_chain(self):
        program = parse(
            "program p\n  integer i, j, n, idx(10)\n  real a(10), b(10)\n"
            "  do i = 1, n\n    j = idx(i)\n    b(i) = 7.0\n"
            "    a(j) = 1.0\n  end do\nend\n"
        )
        plan = build_plan(program)
        # j = idx(i) is in the slice; b(i) = 7.0 is not.
        loop = plan.loop
        slice_targets = []
        from repro.dsl.ast_nodes import Assign, Var

        for stmt in loop.body:
            if isinstance(stmt, Assign) and id(stmt) in plan.slice_stmt_ids:
                slice_targets.append(stmt)
        assert len(slice_targets) == 1
        assert isinstance(slice_targets[0].target, Var)
        assert slice_targets[0].target.name == "j"

    def test_statically_safe_loop_has_no_tested_arrays(self):
        plan = plan_for(
            "program p\n  integer i, n\n  real a(10), b(10)\n"
            "  do i = 1, n\n    a(i) = b(i)\n  end do\nend\n"
        )
        assert plan.tested_arrays == frozenset()
        assert plan.statically_parallel
