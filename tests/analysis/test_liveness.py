"""Definite-assignment / liveness analysis tests."""

from repro.analysis.liveness import (
    array_exposed_reads,
    exposed_scalar_reads,
    scalars_read_after,
)
from repro.dsl.parser import parse
from repro.interp.interpreter import find_target_loop


def body_of(source):
    return find_target_loop(parse(source)).body


DECLS = "integer i, j, n\n  real s, t, x\n  real a(10), b(10)"


def loop_body(stmts):
    return body_of(
        f"program p\n  {DECLS}\n  do i = 1, n\n{stmts}\n  end do\nend\n"
    )


class TestExposedScalarReads:
    def test_write_before_read_not_exposed(self):
        body = loop_body("    t = 1.0\n    x = t")
        assert "t" not in exposed_scalar_reads(body, {"i"})

    def test_read_before_write_exposed(self):
        body = loop_body("    x = t\n    t = 1.0")
        assert "t" in exposed_scalar_reads(body, {"i"})

    def test_branch_must_assign_on_both_paths(self):
        body = loop_body(
            "    if (i > 1) then\n      t = 1.0\n    end if\n    x = t"
        )
        assert "t" in exposed_scalar_reads(body, {"i"})

    def test_both_branches_assign_covers(self):
        body = loop_body(
            "    if (i > 1) then\n      t = 1.0\n    else\n      t = 2.0\n"
            "    end if\n    x = t"
        )
        assert "t" not in exposed_scalar_reads(body, {"i"})

    def test_inner_loop_may_run_zero_times(self):
        body = loop_body(
            "    do j = 1, n\n      t = 1.0\n    end do\n    x = t"
        )
        assert "t" in exposed_scalar_reads(body, {"i"})

    def test_init_then_accumulate_not_exposed(self):
        body = loop_body(
            "    s = 0.0\n    do j = 1, n\n      s = s + a(j)\n    end do\n"
            "    x = s"
        )
        assert "s" not in exposed_scalar_reads(body, {"i"})

    def test_read_in_subscript_counts(self):
        body = loop_body("    a(j) = 1.0")
        assert "j" in exposed_scalar_reads(body, {"i"})

    def test_initial_assigned_respected(self):
        body = loop_body("    x = i")
        assert "i" not in exposed_scalar_reads(body, {"i"})


class TestArrayExposedReads:
    def test_written_then_read_not_exposed(self):
        body = loop_body("    a(i) = 1.0\n    x = a(i)")
        assert "a" not in array_exposed_reads(body)

    def test_read_before_write_exposed(self):
        body = loop_body("    x = a(i)\n    a(i) = 1.0")
        assert "a" in array_exposed_reads(body)

    def test_inner_loop_write_counts_optimistically(self):
        # Whole-array heuristic assumes the inner loop runs at least once.
        body = loop_body(
            "    do j = 1, n\n      a(j) = b(j)\n    end do\n"
            "    do j = 1, n\n      x = a(j)\n    end do"
        )
        assert "a" not in array_exposed_reads(body)

    def test_read_only_array_exposed(self):
        body = loop_body("    x = b(i)")
        assert "b" in array_exposed_reads(body)


class TestScalarsReadAfter:
    def test_reads_collected(self):
        program = parse(
            f"program p\n  {DECLS}\n  do i = 1, n\n    t = 1.0\n  end do\n"
            "  x = t + s\nend\n"
        )
        loop = find_target_loop(program)
        from repro.interp.interpreter import split_at_loop

        _before, after = split_at_loop(program, loop)
        reads = scalars_read_after(after)
        assert {"t", "s"} <= reads

    def test_subscripts_counted(self):
        program = parse(
            f"program p\n  {DECLS}\n  do i = 1, n\n    j = 1\n  end do\n"
            "  a(j) = 1.0\nend\n"
        )
        loop = find_target_loop(program)
        from repro.interp.interpreter import split_at_loop

        _before, after = split_at_loop(program, loop)
        assert "j" in scalars_read_after(after)
