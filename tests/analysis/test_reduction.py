"""Reduction recognition tests: syntactic baseline vs forward substitution."""


from repro.analysis.instrument import number_refs
from repro.analysis.reduction import (
    find_reductions,
    syntactic_reductions,
)
from repro.dsl.parser import parse
from repro.interp.interpreter import find_target_loop


def analyzed(source, live_out=frozenset()):
    program = parse(source)
    number_refs(program)
    loop = find_target_loop(program)
    from repro.analysis.symtab import summarize_body

    written = set(summarize_body(loop.body).arrays_written)
    return find_reductions(loop, written, frozenset(live_out)), loop


def loop_of(source):
    program = parse(source)
    number_refs(program)
    return find_target_loop(program)


class TestSyntacticBaseline:
    def test_direct_sum_matched(self):
        loop = loop_of(
            "program p\n  integer i, n, idx(10)\n  real a(10)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) + 1.0\n  end do\nend\n"
        )
        assert len(syntactic_reductions(loop.body, {"a"})) == 1

    def test_through_temporary_not_matched_syntactically(self):
        loop = loop_of(
            "program p\n  integer i, n, idx(10)\n  real a(10), t\n"
            "  do i = 1, n\n    t = a(idx(i))\n    a(idx(i)) = t + 1.0\n"
            "  end do\nend\n"
        )
        assert syntactic_reductions(loop.body, {"a"}) == []

    def test_min_max_matched(self):
        loop = loop_of(
            "program p\n  integer i, n, idx(10)\n  real a(10), v(10)\n"
            "  do i = 1, n\n    a(idx(i)) = min(a(idx(i)), v(i))\n  end do\nend\n"
        )
        assert len(syntactic_reductions(loop.body, {"a"})) == 1

    def test_self_referencing_contribution_rejected(self):
        loop = loop_of(
            "program p\n  integer i, n, idx(10)\n  real a(10)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) + a(i)\n  end do\nend\n"
        )
        assert syntactic_reductions(loop.body, {"a"}) == []


class TestForwardSubstitution:
    def test_direct_sum(self):
        report, _loop = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) + 1.0\n  end do\nend\n"
        )
        assert len(report.candidates) == 1
        assert report.candidates[0].op == "+"

    def test_subtraction_is_sum_reduction(self):
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10), v(10)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) - v(i)\n  end do\nend\n"
        )
        assert [c.op for c in report.candidates] == ["+"]

    def test_product_reduction(self):
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10), v(10)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) * v(i)\n  end do\nend\n"
        )
        assert [c.op for c in report.candidates] == ["*"]

    def test_through_temporary(self):
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10), t, t2\n"
            "  do i = 1, n\n    t = a(idx(i))\n    t2 = t + 2.0\n"
            "    a(idx(i)) = t2\n  end do\nend\n"
        )
        assert len(report.candidates) == 1
        # Both the load and the store reference sites are labelled.
        assert len(report.redux_refs) >= 2

    def test_through_control_flow(self):
        report, _ = analyzed(
            "program p\n  integer i, n, m, idx(10)\n  real a(10), t\n"
            "  do i = 1, n\n"
            "    if (m == 1) then\n      t = a(idx(i)) + 1.0\n"
            "    else\n      t = a(idx(i)) - 2.0\n    end if\n"
            "    a(idx(i)) = t\n  end do\nend\n"
        )
        assert [c.op for c in report.candidates] == ["+"]

    def test_conflicting_ops_across_branches_rejected(self):
        report, _ = analyzed(
            "program p\n  integer i, n, m, idx(10)\n  real a(10), t\n"
            "  do i = 1, n\n"
            "    if (m == 1) then\n      t = a(idx(i)) + 1.0\n"
            "    else\n      t = a(idx(i)) * 2.0\n    end if\n"
            "    a(idx(i)) = t\n  end do\nend\n"
        )
        assert report.candidates == []

    def test_overwriting_branch_rejected(self):
        # One path stores an unrelated value: not a reduction.
        report, _ = analyzed(
            "program p\n  integer i, n, m, idx(10)\n  real a(10), t\n"
            "  do i = 1, n\n"
            "    if (m == 1) then\n      t = a(idx(i)) + 1.0\n"
            "    else\n      t = 0.0\n    end if\n"
            "    a(idx(i)) = t\n  end do\nend\n"
        )
        assert report.candidates == []

    def test_escaping_value_rejected(self):
        # The loaded value also escapes to another array.
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10), w(10), t\n"
            "  do i = 1, n\n    t = a(idx(i))\n    a(idx(i)) = t + 1.0\n"
            "    w(i) = t\n  end do\nend\n"
        )
        assert all(c.array != "a" for c in report.candidates)

    def test_value_used_in_condition_rejected(self):
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10), t, x\n"
            "  do i = 1, n\n    t = a(idx(i))\n"
            "    if (t > 0.0) then\n      x = 1.0\n    end if\n"
            "    a(idx(i)) = t + 1.0\n  end do\nend\n"
        )
        assert report.candidates == []

    def test_reduction_inside_inner_loop(self):
        report, _ = analyzed(
            "program p\n  integer i, j, n, m, idx(10)\n  real a(10), v(10)\n"
            "  do i = 1, n\n    do j = 1, m\n"
            "      a(idx(j)) = a(idx(j)) + v(j)\n    end do\n  end do\nend\n"
        )
        assert [c.op for c in report.candidates] == ["+"]

    def test_different_subscript_rejected(self):
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10)\n"
            "  do i = 1, n\n    a(idx(i)) = a(i) + 1.0\n  end do\nend\n"
        )
        assert report.candidates == []

    def test_two_reduction_statements_same_array(self):
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10), jdx(10)\n  real a(10), v(10)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) + v(i)\n"
            "    a(jdx(i)) = a(jdx(i)) + 2.0\n  end do\nend\n"
        )
        assert len(report.candidates) == 2

    def test_subscript_redefined_between_load_and_store_rejected(self):
        # j changes between the load and the store: different elements.
        report, _ = analyzed(
            "program p\n  integer i, j, n, idx(10)\n  real a(10), t\n"
            "  do i = 1, n\n    j = idx(i)\n    t = a(j)\n    j = j + 1\n"
            "    a(j) = t + 1.0\n  end do\nend\n"
        )
        assert report.candidates == []


class TestScalarReductions:
    def test_simple_sum(self):
        report, _ = analyzed(
            "program p\n  integer i, n\n  real s, v(10)\n"
            "  do i = 1, n\n    s = s + v(i)\n  end do\nend\n"
        )
        assert report.scalar_reductions == {"s": "+"}

    def test_max_reduction(self):
        report, _ = analyzed(
            "program p\n  integer i, n\n  real s, v(10)\n"
            "  do i = 1, n\n    s = max(s, v(i))\n  end do\nend\n"
        )
        assert report.scalar_reductions == {"s": "max"}

    def test_conditional_update(self):
        report, _ = analyzed(
            "program p\n  integer i, n\n  real s, v(10)\n"
            "  do i = 1, n\n    if (v(i) > 0.0) then\n      s = s + v(i)\n"
            "    end if\n  end do\nend\n"
        )
        assert report.scalar_reductions == {"s": "+"}

    def test_accumulation_in_inner_loop(self):
        report, _ = analyzed(
            "program p\n  integer i, j, n, m\n  real s, v(10)\n"
            "  do i = 1, n\n    do j = 1, m\n      s = s + v(j)\n"
            "    end do\n  end do\nend\n"
        )
        assert report.scalar_reductions == {"s": "+"}

    def test_scalar_used_in_condition_rejected(self):
        report, _ = analyzed(
            "program p\n  integer i, n\n  real s, x, v(10)\n"
            "  do i = 1, n\n    if (s > 0.0) then\n      x = 1.0\n    end if\n"
            "    s = s + v(i)\n  end do\nend\n"
        )
        assert report.scalar_reductions == {}

    def test_scalar_escaping_to_array_rejected(self):
        report, _ = analyzed(
            "program p\n  integer i, n\n  real s, w(10), v(10)\n"
            "  do i = 1, n\n    s = s + v(i)\n    w(i) = s\n  end do\nend\n"
        )
        assert report.scalar_reductions == {}

    def test_private_scalar_not_a_reduction(self):
        report, _ = analyzed(
            "program p\n  integer i, n\n  real s, w(10), v(10)\n"
            "  do i = 1, n\n    s = v(i)\n    s = s + 1.0\n    w(i) = s\n"
            "  end do\nend\n"
        )
        assert report.scalar_reductions == {}


class TestDemandDrivenSubstitution:
    """The forward-substitution pass is demand-driven: scalar
    definitions are recorded as placeholders and only expanded when a
    demand point (a store, a condition, a bound, the loop-exit merge)
    actually reads them."""

    def test_counters_on_report(self):
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10), t\n"
            "  do i = 1, n\n    t = a(idx(i))\n    a(idx(i)) = t + 1.0\n"
            "  end do\nend\n"
        )
        assert report.candidates  # substitution still sees through t
        assert report.defs_recorded >= 1
        assert 0 < report.defs_expanded <= report.defs_recorded

    def test_dead_definition_never_expanded(self):
        # ``t`` is overwritten before every use: the first definition is
        # recorded but no demand point ever reads it, so it stays
        # unexpanded — the laziness the refactor buys, observable.
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10), t, u\n"
            "  do i = 1, n\n    t = a(idx(i)) * 2.0\n    t = 1.0\n"
            "    u = a(idx(i))\n    a(idx(i)) = u + t\n  end do\nend\n"
        )
        assert report.candidates
        assert report.defs_expanded < report.defs_recorded

    def test_dead_subscript_load_does_not_escape(self):
        # The dead definition reads a(idx(i)); eager substitution would
        # have evaluated it (escaping the idx(i) subscript), demand
        # substitution never looks — a(...) stays a recognized
        # reduction rather than being demoted by a phantom read.
        report, _ = analyzed(
            "program p\n  integer i, n, idx(10)\n  real a(10), t\n"
            "  do i = 1, n\n    t = a(idx(i))\n    t = 0.0\n"
            "    a(idx(i)) = a(idx(i)) + t + 1.0\n  end do\nend\n"
        )
        assert sorted(report.arrays()) == ["a"]
