"""Symbolic-expression machinery tests (forward-substitution substrate)."""


from repro.analysis.sym import (
    MAX_LEAVES,
    SConst,
    SGamma,
    SInit,
    SLoad,
    SOp,
    SUnknown,
    SymExpr,
    contains_array_load,
    contains_init,
    gamma_leaves,
    inits_in,
    loads_in,
    make_op,
    node_count,
)


def load(array="a", sub=None, ref_id=0, version=0):
    return SLoad(ref_id, array, sub if sub is not None else SConst(1), version)


class TestEquality:
    def test_const_equality_distinguishes_types(self):
        assert SConst(1) == SConst(1)
        assert SConst(1) != SConst(1.0)

    def test_load_equality_ignores_ref_id(self):
        assert load(ref_id=1) == load(ref_id=2)

    def test_load_equality_respects_version(self):
        assert load(version=0) != load(version=1)

    def test_load_equality_respects_subscript(self):
        assert load(sub=SConst(1)) != load(sub=SConst(2))

    def test_unknowns_equal_only_by_uid(self):
        u = SUnknown()
        assert u == SUnknown(u.uid)
        assert u != SUnknown()

    def test_op_structural(self):
        a = SOp("+", (SConst(1), SInit("x")))
        b = SOp("+", (SConst(1), SInit("x")))
        assert a == b
        assert hash(a) == hash(b)

    def test_gamma_structural(self):
        cond = SUnknown()
        assert SGamma(cond, SConst(1), SConst(2)) == SGamma(cond, SConst(1), SConst(2))


class TestTraversal:
    def test_loads_in_finds_nested(self):
        expr = SOp("+", (load(ref_id=1), SOp("*", (load("b", ref_id=2), SConst(2)))))
        assert {l.ref_id for l in loads_in(expr)} == {1, 2}

    def test_loads_in_subscripts(self):
        nested = load("a", sub=load("idx", ref_id=9), ref_id=3)
        assert {l.array for l in loads_in(nested)} == {"a", "idx"}

    def test_inits_in_gamma(self):
        expr = SGamma(SUnknown(), SInit("s"), SConst(0))
        assert {i.name for i in inits_in(expr)} == {"s"}

    def test_contains_helpers(self):
        expr = SOp("+", (load("f"), SInit("s")))
        assert contains_array_load(expr, "f")
        assert not contains_array_load(expr, "g")
        assert contains_init(expr, "s")
        assert not contains_init(expr, "t")


class TestGammaLeaves:
    def test_no_gamma_single_leaf(self):
        expr = SOp("+", (SConst(1), SConst(2)))
        assert gamma_leaves(expr) == [expr]

    def test_top_level_gamma_splits(self):
        expr = SGamma(SUnknown(), SConst(1), SConst(2))
        assert gamma_leaves(expr) == [SConst(1), SConst(2)]

    def test_gamma_distributes_over_ops(self):
        expr = SOp("+", (SGamma(SUnknown(), SConst(1), SConst(2)), SConst(10)))
        leaves = gamma_leaves(expr)
        assert leaves == [
            SOp("+", (SConst(1), SConst(10))),
            SOp("+", (SConst(2), SConst(10))),
        ]

    def test_nested_gammas_multiply(self):
        g = lambda: SGamma(SUnknown(), SConst(1), SConst(2))
        expr = SOp("+", (g(), g()))
        assert len(gamma_leaves(expr)) == 4

    def test_leaf_explosion_returns_none(self):
        expr = SGamma(SUnknown(), SConst(1), SConst(2))
        for _ in range(8):  # 2^9 alternatives > MAX_LEAVES
            expr = SOp("+", (expr, SGamma(SUnknown(), SConst(1), SConst(2))))
        assert gamma_leaves(expr) is None


class TestSizeControl:
    def test_node_count(self):
        expr = SOp("+", (SConst(1), SOp("*", (SConst(2), SInit("x")))))
        assert node_count(expr) == 5

    def test_make_op_collapses_oversized(self):
        wide = make_op("+", tuple(SConst(i) for i in range(500)))
        assert isinstance(wide, SUnknown)

    def test_collapse_resets_growth(self):
        # Once collapsed, further composition stays small (the collapse
        # replaces the oversized subtree with one opaque node).
        expr: SymExpr = make_op("+", tuple(SConst(i) for i in range(500)))
        grown = make_op("+", (expr, SConst(1)))
        assert node_count(grown) <= 3
