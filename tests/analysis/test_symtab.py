"""Use/def summary tests."""

from repro.analysis.symtab import (
    arrays_in,
    iter_array_refs,
    scalar_reads_in,
    summarize_body,
)
from repro.dsl.parser import parse
from repro.interp.interpreter import find_target_loop

SOURCE = """
program s
  integer i, j, n, m
  integer idx(8)
  real a(8), b(8), c(8)
  real t, u
  do i = 1, n
    t = b(idx(i)) + u
    do j = 1, m
      c(j) = t
    end do
    if (t > 0.0) then
      a(i) = t
    end if
  end do
end
"""


def body():
    return find_target_loop(parse(SOURCE)).body


class TestSummary:
    def test_arrays_written(self):
        summary = summarize_body(body())
        assert summary.arrays_written == {"a", "c"}

    def test_arrays_read(self):
        summary = summarize_body(body())
        assert summary.arrays_read == {"b", "idx"}

    def test_scalars(self):
        summary = summarize_body(body())
        assert "t" in summary.scalars_written
        assert {"u", "t", "m", "i", "j", "n"} >= summary.scalars_read
        assert "u" in summary.scalars_read

    def test_inner_loop_vars(self):
        summary = summarize_body(body())
        assert summary.inner_loop_vars == {"j"}


class TestRefIteration:
    def test_store_flags(self):
        sites = list(iter_array_refs(body()))
        stores = [s for s in sites if s.is_store]
        loads = [s for s in sites if not s.is_store]
        assert {s.ref.name for s in stores} == {"a", "c"}
        assert {s.ref.name for s in loads} == {"b", "idx"}

    def test_store_sites_carry_statement(self):
        sites = list(iter_array_refs(body()))
        for site in sites:
            if site.is_store:
                assert site.stmt is not None
            else:
                assert site.stmt is None

    def test_subscript_refs_yielded(self):
        # idx(i) inside b(idx(i)) must appear as a load site.
        sites = list(iter_array_refs(body()))
        assert any(s.ref.name == "idx" for s in sites)


class TestExprHelpers:
    def test_scalar_reads_in(self):
        program = parse(
            "program p\n  integer i\n  real a(4), x, y\n  a(i) = x + y * 2.0\nend\n"
        )
        stmt = program.body[0]
        assert scalar_reads_in(stmt.expr) == {"x", "y"}
        assert scalar_reads_in(stmt.target.index) == {"i"}

    def test_arrays_in(self):
        program = parse(
            "program p\n  integer i\n  real a(4), b(4), x\n  x = a(b(i))\nend\n"
        )
        assert arrays_in(program.body[0].expr) == {"a", "b"}
