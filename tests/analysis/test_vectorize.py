"""Static vectorizability classifier for the whole-block engine."""

from __future__ import annotations

import pytest

from repro.analysis.instrument import build_plan
from repro.analysis.vectorize import SAFE_INTRINSICS, classify_loop
from repro.dsl.parser import parse
from repro.workloads.adm import build_adm
from repro.workloads.bdna import build_bdna
from repro.workloads.dyfesm import build_dyfesm
from repro.workloads.mdg import build_mdg
from repro.workloads.ocean import build_ocean
from repro.workloads.spice import build_spice
from repro.workloads.track import build_track


def classify_source(source: str):
    program = parse(source)
    plan = build_plan(program)
    return classify_loop(program, plan.loop, plan)


def classify_workload(workload):
    program = workload.program()
    plan = build_plan(program)
    return classify_loop(program, plan.loop, plan)


class TestPaperWorkloads:
    @pytest.mark.parametrize(
        "build", [build_bdna, build_mdg, build_ocean], ids=["bdna", "mdg", "ocean"]
    )
    def test_vectorizable_workloads_accepted(self, build):
        decision = classify_workload(build())
        assert decision.ok, decision.reason
        assert decision.reason is None

    def test_spice_rejected_for_redux_load_outside_update(self):
        decision = classify_workload(build_spice(n=40))
        assert not decision.ok
        assert "reduction" in decision.reason

    @pytest.mark.parametrize(
        "build, intrinsic",
        [(build_track, "exp"), (build_adm, "sin")],
        ids=["track", "adm"],
    )
    def test_inexact_intrinsics_rejected(self, build, intrinsic):
        decision = classify_workload(build())
        assert not decision.ok
        assert intrinsic in decision.reason
        assert "bit-exact" in decision.reason

    def test_dyfesm_rejected_for_indirect_scalar_reduction(self):
        decision = classify_workload(build_dyfesm())
        assert not decision.ok
        assert "scalar reduction" in decision.reason


class TestSyntheticShapes:
    def test_plain_gather_scatter_accepted(self):
        decision = classify_source(
            "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
            "  do i = 1, n\n    a(idx(i)) = v(i) * 2.0\n  end do\nend\n"
        )
        assert decision.ok

    def test_safe_intrinsics_accepted(self):
        assert "sqrt" in SAFE_INTRINSICS
        decision = classify_source(
            "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
            "  do i = 1, n\n    a(idx(i)) = sqrt(abs(v(i)))\n  end do\nend\n"
        )
        assert decision.ok

    def test_unsafe_intrinsic_rejected(self):
        decision = classify_source(
            "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
            "  do i = 1, n\n    a(idx(i)) = exp(v(i))\n  end do\nend\n"
        )
        assert not decision.ok
        assert "exp" in decision.reason

    def test_untested_shared_store_rejected(self):
        # An affine store needs no speculation, so the array is neither
        # tested nor privatized — its values must land per iteration,
        # which the whole-block commit cannot honour.
        decision = classify_source(
            "program p\n  integer i, n\n  real a(8), v(8)\n"
            "  do i = 1, n\n    a(i) = v(i)\n  end do\nend\n"
        )
        assert not decision.ok
        assert "shared array" in decision.reason

    def test_decision_is_falsy_on_reject(self):
        decision = classify_source(
            "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
            "  do i = 1, n\n    a(idx(i)) = exp(v(i))\n  end do\nend\n"
        )
        assert bool(decision) is False
        assert bool(classify_source(
            "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
            "  do i = 1, n\n    a(idx(i)) = v(i)\n  end do\nend\n"
        )) is True
