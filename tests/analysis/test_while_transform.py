"""While-loop parallelization transform tests."""

import numpy as np
import pytest

from repro.analysis.while_transform import (
    detect_list_traversal,
    transform_list_traversal,
)
from repro.dsl.ast_nodes import Do, While
from repro.dsl.parser import parse
from repro.errors import AnalysisError
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.machine.costmodel import CostModel
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy

LIST_SOURCE = """
program walker
  integer p, head, n
  integer nxt(16), node(16)
  real y(8), g(16)
  real t
  p = head
  do while (p > 0)
    t = g(p) * 2.0
    y(node(p)) = y(node(p)) + t
    p = nxt(p)
  end do
end
"""


def make_list_inputs(n=16, m=8, seed=0):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n) + 1
    nxt = np.zeros(n, dtype=np.int64)
    for a, b in zip(perm[:-1], perm[1:]):
        nxt[a - 1] = b
    nxt[perm[-1] - 1] = 0
    return {
        "head": int(perm[0]),
        "nxt": nxt,
        "node": rng.integers(1, m + 1, n),
        "g": rng.normal(size=n),
        "y": rng.normal(size=m),
    }


def first_while(program):
    return next(s for s in program.body if isinstance(s, While))


class TestDetection:
    def test_canonical_shape_detected(self):
        program = parse(LIST_SOURCE)
        pattern = detect_list_traversal(program, first_while(program))
        assert pattern is not None
        assert pattern.cursor == "p"
        assert pattern.next_array == "nxt"
        assert len(pattern.body) == 2

    def test_nonzero_condition_detected(self):
        source = LIST_SOURCE.replace("p > 0", "p /= 0")
        program = parse(source)
        assert detect_list_traversal(program, first_while(program)) is not None

    def test_cursor_mutated_in_body_rejected(self):
        source = LIST_SOURCE.replace("t = g(p) * 2.0", "p = p\n    t = g(p) * 2.0")
        program = parse(source)
        assert detect_list_traversal(program, first_while(program)) is None

    def test_link_array_written_rejected(self):
        source = LIST_SOURCE.replace(
            "y(node(p)) = y(node(p)) + t", "nxt(p) = nxt(p)"
        )
        program = parse(source)
        assert detect_list_traversal(program, first_while(program)) is None

    def test_non_advance_tail_rejected(self):
        source = LIST_SOURCE.replace("    p = nxt(p)\n", "    p = nxt(p)\n    t = 0.0\n")
        program = parse(source)
        assert detect_list_traversal(program, first_while(program)) is None

    def test_real_cursor_rejected(self):
        source = (
            "program w\n  real p, nxt2(4)\n  real nxt(4)\n"
            "  do while (p > 0)\n    p = nxt(p)\n  end do\nend\n"
        )
        program = parse(source)
        assert detect_list_traversal(program, first_while(program)) is None


class TestTransform:
    def test_transform_preserves_serial_semantics(self):
        inputs = make_list_inputs()
        original = parse(LIST_SOURCE)
        env_orig = Environment(original, inputs)
        Interpreter(original, env_orig, value_based=False).run()

        transformed = transform_list_traversal(parse(LIST_SOURCE))
        env_new = Environment(transformed, inputs)
        Interpreter(transformed, env_new, value_based=False).run()

        np.testing.assert_allclose(env_new.arrays["y"], env_orig.arrays["y"])
        assert env_new.scalars["p"] == env_orig.scalars["p"]

    def test_transformed_program_has_do_target(self):
        transformed = transform_list_traversal(parse(LIST_SOURCE))
        assert any(isinstance(s, Do) for s in transformed.body)

    def test_fresh_names_avoid_collisions(self):
        source = LIST_SOURCE.replace("  integer p, head, n\n",
                                     "  integer p, head, n, lw_i\n")
        transformed = transform_list_traversal(parse(source))
        names = [d.name for d in transformed.decls]
        assert "lw_i1" in names
        assert names.count("lw_i") == 1

    def test_no_matching_while_raises(self):
        program = parse("program p\n  integer i\n  i = 1\nend\n")
        with pytest.raises(AnalysisError):
            transform_list_traversal(program)

    def test_empty_list_handled(self):
        inputs = make_list_inputs()
        inputs["head"] = 0  # empty list: zero-trip traversal
        transformed = transform_list_traversal(parse(LIST_SOURCE))
        env = Environment(transformed, inputs)
        Interpreter(transformed, env, value_based=False).run()
        assert env.scalars["p"] == 0


class TestEndToEnd:
    def test_transformed_loop_parallelizes(self):
        inputs = make_list_inputs()
        transformed = transform_list_traversal(parse(LIST_SOURCE))
        runner = LoopRunner(transformed, inputs)
        assert "y" in runner.plan.reduction_arrays  # through-temporary redux
        model = CostModel(num_procs=4)
        serial = runner.serial_run(model)
        report = runner.run(Strategy.SPECULATIVE, RunConfig(model=model))
        assert report.passed
        np.testing.assert_allclose(report.env.arrays["y"], serial.env.arrays["y"])
