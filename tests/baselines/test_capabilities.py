"""Table II capability-row consistency tests."""

from repro.baselines.capabilities import TABLE_II_ROWS
from repro.baselines.methods import ALL_METHODS


def test_all_executable_methods_have_a_row():
    row_methods = " ".join(r.method for r in TABLE_II_ROWS)
    for name in ALL_METHODS:
        key = name.split("/")[0].split(" ")[0]
        assert key in row_methods, f"missing Table II row for {name}"


def test_this_work_present_with_priv_and_reductions():
    ours = [r for r in TABLE_II_ROWS if "this work" in r.method]
    assert len(ours) == 1
    assert ours[0].priv_or_reductions == "P,R"
    assert ours[0].global_sync == "No"


def test_saltz_rows_marked_restricted():
    saltz_rows = [r for r in TABLE_II_ROWS if "Saltz" in r.method]
    assert saltz_rows
    assert all(r.restricts_loop.startswith("Yes") for r in saltz_rows)


def test_row_fields_nonempty():
    for row in TABLE_II_ROWS:
        assert row.method
        assert row.optimal_schedule
        assert row.priv_or_reductions
