"""DOACROSS simulation tests."""

import numpy as np
import pytest

from repro.baselines.doacross import simulate_doacross
from repro.baselines.trace import extract_trace
from repro.dsl.parser import parse
from repro.errors import BaselineInapplicable
from repro.machine.costmodel import CostModel
from repro.workloads.synthetic import build_wavefront_chain

MODEL = CostModel(num_procs=4)


def chain_setup(n=32, num_chains=4):
    workload = build_wavefront_chain(n=n, num_chains=num_chains)
    trace = extract_trace(workload.program(), workload.inputs)
    return trace


def test_independent_loop_pipelines_fully():
    source = (
        "program p\n  integer i, n, w(16)\n  real a(16), v(16)\n"
        "  do i = 1, n\n    a(w(i)) = v(i) * 2.0\n  end do\nend\n"
    )
    trace = extract_trace(
        parse(source), {"n": 16, "w": np.arange(16, 0, -1), "v": np.zeros(16)}
    )
    result = simulate_doacross(trace, trace.iteration_costs, MODEL)
    assert result.sync_waits == 0
    serial = sum(MODEL.iteration_cycles(c) for c in trace.iteration_costs)
    assert result.total < serial / 2  # real pipeline parallelism at p=4


def test_chained_loop_serializes_with_sync_penalty():
    trace = chain_setup(n=32, num_chains=1)  # one long chain
    result = simulate_doacross(trace, trace.iteration_costs, MODEL)
    serial = sum(MODEL.iteration_cycles(c) for c in trace.iteration_costs)
    # Every hop pays the producer-wait penalty: slower than serial.
    assert result.sync_waits >= 30
    assert result.total > serial


def test_more_chains_more_parallelism():
    slow = simulate_doacross(
        chain_setup(num_chains=1),
        chain_setup(num_chains=1).iteration_costs, MODEL,
    )
    fast_trace = chain_setup(num_chains=8)
    fast = simulate_doacross(fast_trace, fast_trace.iteration_costs, MODEL)
    assert fast.total < slow.total


def test_output_dependences_rejected():
    source = (
        "program p\n  integer i, n, w(8)\n  real a(8)\n"
        "  do i = 1, n\n    a(w(i)) = 1.0\n  end do\nend\n"
    )
    trace = extract_trace(parse(source), {"n": 8, "w": np.array([1, 1, 2, 3, 4, 5, 6, 7])})
    with pytest.raises(BaselineInapplicable):
        simulate_doacross(trace, trace.iteration_costs, MODEL)


def test_completion_times_monotone_per_processor():
    trace = chain_setup()
    result = simulate_doacross(trace, trace.iteration_costs, MODEL)
    p = MODEL.num_procs
    for proc in range(p):
        own = result.completion[proc::p]
        assert all(a < b for a, b in zip(own, own[1:]))


def test_dependences_respected():
    trace = chain_setup()
    result = simulate_doacross(trace, trace.iteration_costs, MODEL)
    for i, preds in enumerate(trace.flow_predecessors()):
        for pred in preds:
            assert result.completion[pred] < result.completion[i]
