"""Staged-execution pricing tests."""

import pytest

from repro.baselines.executor import staged_execution_time
from repro.baselines.methods import MethodSchedule
from repro.interp.costs import IterationCost
from repro.machine.costmodel import CostModel


def schedule(stages, **kw):
    defaults = dict(method="test", inspector_accesses=0, parallel_inspector=True,
                    critical_sections=0)
    defaults.update(kw)
    return MethodSchedule(stages=stages, **defaults)


def costs(n, flops=10):
    return [IterationCost(flops=flops) for _ in range(n)]


def test_single_stage_cheaper_than_many():
    model = CostModel(num_procs=4)
    one = staged_execution_time(schedule([list(range(8))]), costs(8), model)
    many = staged_execution_time(schedule([[i] for i in range(8)]), costs(8), model)
    assert one.total() < many.total()


def test_barrier_per_stage():
    model = CostModel(num_procs=4)
    two = staged_execution_time(schedule([[0, 1], [2, 3]]), costs(4), model)
    assert two.barriers == pytest.approx(2 * model.barrier(4))


def test_sequential_inspector_not_divided():
    model = CostModel(num_procs=4)
    parallel = staged_execution_time(
        schedule([[0]], inspector_accesses=100, parallel_inspector=True),
        costs(1), model,
    )
    sequential = staged_execution_time(
        schedule([[0]], inspector_accesses=100, parallel_inspector=False),
        costs(1), model,
    )
    assert sequential.inspector == pytest.approx(4 * parallel.inspector)


def test_critical_sections_priced():
    model = CostModel(num_procs=2)
    without = staged_execution_time(schedule([[0, 1]]), costs(2), model)
    with_cs = staged_execution_time(
        schedule([[0, 1]], critical_sections=10), costs(2), model
    )
    assert with_cs.synchronization > without.synchronization


def test_stage_time_respects_iteration_costs():
    model = CostModel(num_procs=2)
    cheap = staged_execution_time(schedule([[0, 1]]), costs(2, flops=1), model)
    dear = staged_execution_time(schedule([[0, 1]]), costs(2, flops=100), model)
    assert dear.stages > cheap.stages
