"""Wavefront scheduler tests: validity and method-specific behaviour."""


import numpy as np
import pytest

from repro.baselines.methods import (
    ALL_METHODS,
    schedule_leung_zahorjan,
    schedule_midkiff_padua,
    schedule_polychronopoulos,
    schedule_saltz,
    schedule_zhu_yew,
)
from repro.baselines.trace import extract_trace
from repro.errors import BaselineInapplicable
from repro.workloads.synthetic import build_wavefront_chain


def chain_trace(n=48, num_chains=4, **kw):
    workload = build_wavefront_chain(n=n, num_chains=num_chains, **kw)
    return extract_trace(workload.program(), workload.inputs), workload


def assert_valid(schedule, preds):
    """Every tracked predecessor must land in a strictly earlier stage."""
    stage_of = schedule.iteration_stage()
    executed = sorted(stage_of)
    assert executed == list(range(len(preds)))
    for iteration, pred_set in enumerate(preds):
        for pred in pred_set:
            assert stage_of[pred] < stage_of[iteration], (
                f"{schedule.method}: {pred} !< {iteration}"
            )


class TestAllMethodsValidity:
    @pytest.mark.parametrize("name", list(ALL_METHODS))
    def test_schedule_respects_flow_dependences(self, name):
        trace, _ = chain_trace()
        try:
            schedule = ALL_METHODS[name](trace)
        except BaselineInapplicable:
            pytest.skip(f"{name} inapplicable to this loop")
        assert_valid(schedule, trace.flow_predecessors())

    @pytest.mark.parametrize("name", list(ALL_METHODS))
    def test_depth_at_least_chain_length(self, name):
        trace, _ = chain_trace(n=40, num_chains=5)
        try:
            schedule = ALL_METHODS[name](trace)
        except BaselineInapplicable:
            pytest.skip(f"{name} inapplicable")
        assert schedule.depth >= 8


class TestMethodSpecifics:
    def test_minimal_depth_methods_hit_optimum(self):
        trace, _ = chain_trace(n=40, num_chains=5)
        optimal = 8
        assert schedule_midkiff_padua(trace).depth == optimal
        assert schedule_saltz(trace).depth == optimal

    def test_zhu_yew_serializes_shared_reads(self):
        trace, _ = chain_trace(n=24, num_chains=4, shared_read=True)
        zy = schedule_zhu_yew(trace)
        mp = schedule_midkiff_padua(trace)
        assert zy.depth > mp.depth
        assert zy.depth == 24  # every iteration reads the hot element

    def test_sectioning_suboptimal_on_scrambled_chains(self):
        trace, _ = chain_trace(n=64, num_chains=4, scramble=True, seed=5)
        sectioned = schedule_leung_zahorjan(trace, num_sections=4)
        optimal = schedule_midkiff_padua(trace)
        assert sectioned.depth >= optimal.depth

    def test_polychronopoulos_blocks_are_contiguous(self):
        trace, _ = chain_trace(n=32, num_chains=4, scramble=True)
        schedule = schedule_polychronopoulos(trace)
        for stage in schedule.stages:
            assert stage == list(range(stage[0], stage[-1] + 1))

    def test_polychronopoulos_suboptimal_on_scrambled_chains(self):
        trace, _ = chain_trace(n=64, num_chains=8, scramble=True, seed=2)
        poly = schedule_polychronopoulos(trace)
        optimal = schedule_midkiff_padua(trace)
        assert poly.depth > optimal.depth

    def test_saltz_rejects_output_dependences(self):
        source = (
            "program p\n  integer i, n, w(4)\n  real a(4)\n"
            "  do i = 1, n\n    a(w(i)) = 1.0\n  end do\nend\n"
        )
        from repro.dsl.parser import parse

        trace = extract_trace(parse(source), {"n": 4, "w": np.array([1, 1, 2, 3])})
        with pytest.raises(BaselineInapplicable):
            schedule_saltz(trace)
        with pytest.raises(BaselineInapplicable):
            schedule_leung_zahorjan(trace)

    def test_saltz_inspector_is_sequential(self):
        trace, _ = chain_trace()
        assert not schedule_saltz(trace).parallel_inspector

    def test_fully_parallel_loop_single_stage(self):
        source = (
            "program p\n  integer i, n, w(8)\n  real a(8)\n"
            "  do i = 1, n\n    a(w(i)) = 1.0\n  end do\nend\n"
        )
        from repro.dsl.parser import parse

        trace = extract_trace(
            parse(source), {"n": 8, "w": np.arange(8, 0, -1)}
        )
        for name, scheduler in ALL_METHODS.items():
            try:
                schedule = scheduler(trace)
            except BaselineInapplicable:
                continue
            if name == "Leung/Zahorjan":
                # Sectioning concatenates per-section schedules even when
                # the loop is fully parallel: depth == number of sections.
                assert schedule.depth == 8
            else:
                assert schedule.depth == 1, name
