"""Access-trace extraction tests."""

import numpy as np

from repro.baselines.trace import extract_trace
from repro.dsl.parser import parse

SOURCE = (
    "program p\n  integer i, n, w(4), r(4)\n  real a(8), v(4)\n"
    "  do i = 1, n\n    a(w(i)) = a(r(i)) + v(i)\n  end do\nend\n"
)


def trace_for(w, r, n=4):
    return extract_trace(
        parse(SOURCE),
        {"n": n, "w": np.asarray(w), "r": np.asarray(r), "v": np.zeros(4)},
    )


def test_reads_and_writes_recorded():
    trace = trace_for([1, 2, 3, 4], [5, 6, 7, 8])
    assert trace.num_iterations == 4
    assert trace.writes(0) == {("a", 1)}
    assert trace.reads(0) == {("a", 5)}


def test_output_dependences_detected():
    assert trace_for([1, 1, 2, 3], [5, 6, 7, 8]).has_output_dependences()
    assert not trace_for([1, 2, 3, 4], [5, 6, 7, 8]).has_output_dependences()


def test_flow_predecessors():
    # iteration 2 reads what iteration 0 wrote.
    trace = trace_for([1, 2, 3, 4], [5, 6, 1, 7])
    preds = trace.flow_predecessors()
    assert preds[2] == {0}
    assert preds[0] == set()


def test_conflict_predecessors_reads_conflict_mode():
    # Iterations 0 and 1 both read element 5.
    trace = trace_for([1, 2, 3, 4], [5, 5, 6, 7])
    with_reads = trace.conflict_predecessors(reads_conflict=True)
    without = trace.conflict_predecessors(reads_conflict=False)
    assert with_reads[1] == {0}
    assert without[1] == set()


def test_anti_dependence_in_conflicts_not_flow():
    # iteration 1 writes what iteration 0 read.
    trace = trace_for([1, 5, 2, 3], [5, 6, 7, 8])
    assert trace.flow_predecessors()[1] == set()
    assert trace.conflict_predecessors(reads_conflict=False)[1] == {0}


def test_total_accesses():
    trace = trace_for([1, 2, 3, 4], [5, 6, 7, 8])
    assert trace.total_accesses() == 8  # one read + one write per iteration


def test_reduction_accesses_counted_as_both():
    source = (
        "program p\n  integer i, n, idx(4)\n  real f(4)\n"
        "  do i = 1, n\n    f(idx(i)) = f(idx(i)) + 1.0\n  end do\nend\n"
    )
    trace = extract_trace(parse(source), {"n": 4, "idx": np.array([1, 1, 2, 2])})
    assert trace.writes(0) == {("f", 1)}
    assert trace.reads(0) == {("f", 1)}


def test_setup_statements_executed_before_loop():
    source = (
        "program p\n  integer i, n, w(4)\n  real a(4)\n"
        "  n = 4\n"
        "  do i = 1, n\n    a(w(i)) = 1.0\n  end do\nend\n"
    )
    trace = extract_trace(parse(source), {"w": np.array([4, 3, 2, 1])})
    assert trace.num_iterations == 4
