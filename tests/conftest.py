"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.machine.costmodel import CostModel
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy


@pytest.fixture
def small_model() -> CostModel:
    """A 4-processor machine for quick runtime tests."""
    return CostModel(name="test4", num_procs=4)


def make_runner(source: str, inputs: dict) -> LoopRunner:
    """Parse ``source`` and build a LoopRunner over ``inputs``."""
    return LoopRunner(parse(source), inputs)


def run_program(source: str, inputs: dict) -> Environment:
    """Serially execute a program and return its final environment."""
    from repro.interp.interpreter import Interpreter

    program = parse(source)
    env = Environment(program, inputs)
    Interpreter(program, env, value_based=False).run()
    return env


def assert_env_matches(actual: Environment, expected: Environment,
                       arrays=(), scalars=()) -> None:
    """Assert selected final state matches between two environments."""
    for name in arrays:
        np.testing.assert_allclose(
            actual.arrays[name], expected.arrays[name],
            err_msg=f"array {name} diverged",
        )
    for name in scalars:
        assert actual.scalars[name] == pytest.approx(expected.scalars[name]), (
            f"scalar {name} diverged"
        )


def speculative_vs_serial(
    source: str,
    inputs: dict,
    *,
    procs: int = 4,
    arrays=(),
    scalars=(),
    config: RunConfig | None = None,
):
    """Run a loop speculatively and assert the final state matches serial.

    Returns the speculative report for further assertions.
    """
    runner = make_runner(source, inputs)
    model = (config.model if config else CostModel(name="t", num_procs=procs))
    cfg = config or RunConfig(model=model)
    serial = runner.serial_run(cfg.model)
    report = runner.run(Strategy.SPECULATIVE, cfg)
    assert_env_matches(report.env, serial.env, arrays=arrays, scalars=scalars)
    return report
