"""Checkpoint/rollback tests."""

import numpy as np

from repro.core.checkpoint import Checkpoint
from repro.dsl.parser import parse
from repro.interp.env import Environment

PROGRAM = parse("program p\n  integer n\n  real a(4), b(4)\nend\n")


def test_restore_arrays_and_scalars():
    env = Environment(PROGRAM, {"a": np.ones(4), "n": 5})
    checkpoint = Checkpoint(env, ["a"])
    env.store("a", 1, 99.0)
    env.set_scalar("n", 77)
    checkpoint.restore()
    assert env.load("a", 1) == 1.0
    assert env.scalars["n"] == 5


def test_only_selected_arrays_protected():
    env = Environment(PROGRAM, {})
    checkpoint = Checkpoint(env, ["a"])
    env.store("b", 1, 5.0)
    checkpoint.restore()
    assert env.load("b", 1) == 5.0  # b was not checkpointed


def test_elements_saved_counts():
    env = Environment(PROGRAM, {})
    checkpoint = Checkpoint(env, ["a", "b"])
    assert checkpoint.elements_saved == 8


def test_duplicate_names_saved_once():
    env = Environment(PROGRAM, {})
    checkpoint = Checkpoint(env, ["a", "a"])
    assert checkpoint.elements_saved == 4
    assert checkpoint.array_names == ("a",)


def test_saved_array_view():
    env = Environment(PROGRAM, {"a": np.arange(4.0)})
    checkpoint = Checkpoint(env, ["a"])
    env.store("a", 1, -1.0)
    assert checkpoint.saved_array("a")[0] == 0.0


def test_restore_idempotent():
    env = Environment(PROGRAM, {"a": np.ones(4)})
    checkpoint = Checkpoint(env, ["a"])
    env.store("a", 2, 42.0)
    checkpoint.restore()
    checkpoint.restore()
    assert env.load("a", 2) == 1.0
