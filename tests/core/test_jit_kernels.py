"""The native kernel bodies vs their numpy counterparts.

The jit engine's kernels (:mod:`repro.core.jit_kernels`) are plain
Python functions that Numba compiles when available; these tests drive
the *bodies* (``force_python_kernels``), so the full kernel semantics —
the sorted-stream marking replay, the sequential reduction fold, the
last-write-wins scatter — are pinned bit-identical to the numpy paths
on every host, with or without Numba installed.  The staging edge cases
the issue calls out (empty streams, single-element strips, redux
conflicts) and the ``fused_order`` int64 overflow guard live here too.
"""

import numpy as np
import pytest

import repro.core.jit_kernels as jit_kernels
from repro.core.jit_kernels import KernelSet, load_kernels, warm_up
from repro.runtime.profile import KernelCache, kernel_cache
from repro.core.shadow import (
    KIND_READ,
    KIND_REDUX,
    KIND_WRITE,
    ShadowArray,
    fused_order,
)

SIZE = 24


@pytest.fixture
def kernels():
    """The plain-Python kernel set (Numba not required)."""
    jit_kernels.force_python_kernels = True
    jit_kernels.reset_for_tests()
    try:
        yield load_kernels()
    finally:
        jit_kernels.force_python_kernels = False
        jit_kernels.reset_for_tests()


def _random_stream(rng, length, size=SIZE):
    kinds = rng.integers(0, 3, size=length)
    idx = rng.integers(0, size, size=length)
    ops = np.where(kinds == KIND_REDUX, rng.integers(1, 3, size=length), 0)
    grans = rng.integers(0, 6, size=length)
    rank = rng.permutation(length).astype(np.int64)
    return (kinds.astype(np.int64), idx.astype(np.int64),
            ops.astype(np.int64), grans.astype(np.int64), rank)


def _state(shadow: ShadowArray) -> tuple:
    return (
        shadow.w.copy(), shadow.r.copy(), shadow.np_.copy(), shadow.nx.copy(),
        shadow.redux_touched.copy(), shadow.multi_w.copy(),
        shadow._redux_op.copy(), shadow._last_write.copy(),
        shadow._min_write.copy(), shadow._max_exposed_read.copy(),
        shadow._min_exposed_read.copy(),
        shadow.tw,
    )


def _assert_same(a: ShadowArray, b: ShadowArray) -> None:
    for got, want in zip(_state(a), _state(b)):
        if isinstance(got, np.ndarray):
            assert np.array_equal(got, want)
        else:
            assert got == want


class TestStageStreamKernel:
    def test_random_streams_match_numpy_staging(self, kernels):
        rng = np.random.default_rng(11)
        for _ in range(40):
            stream = _random_stream(rng, int(rng.integers(1, 80)))
            native = ShadowArray("a", SIZE)
            ref = ShadowArray("a", SIZE)
            # Pre-existing marks exercise the pre-batch state loads.
            for shadow in (native, ref):
                shadow.mark_write(0, 2)
                shadow.mark_redux(1, 0, "*")
            native.mark_stream_vec(*stream, kernels=kernels)
            ref.mark_stream_vec(*stream)
            _assert_same(native, ref)

    def test_empty_stream_is_a_noop(self, kernels):
        shadow = ShadowArray("a", SIZE)
        empty = np.empty(0, dtype=np.int64)
        shadow.mark_stream_vec(empty, empty, empty, empty, empty,
                               kernels=kernels)
        assert shadow.tw == 0
        assert not shadow.w.any()

    def test_single_element_strip(self, kernels):
        native = ShadowArray("a", SIZE)
        ref = ShadowArray("a", SIZE)
        one = lambda v: np.array([v], dtype=np.int64)  # noqa: E731
        args = (one(KIND_WRITE), one(7), one(0), one(3), one(0))
        native.mark_stream_vec(*args, kernels=kernels)
        ref.mark_stream_vec(*args)
        _assert_same(native, ref)
        assert native.tw == 1

    def test_redux_op_conflict_sets_nx(self, kernels):
        native = ShadowArray("a", SIZE)
        kinds = np.array([KIND_REDUX, KIND_REDUX], dtype=np.int64)
        idx = np.array([5, 5], dtype=np.int64)
        ops = np.array([1, 2], dtype=np.int64)  # '+' then '*'
        grans = np.array([0, 1], dtype=np.int64)
        rank = np.arange(2, dtype=np.int64)
        native.mark_stream_vec(kinds, idx, ops, grans, rank, kernels=kernels)
        ref = ShadowArray("a", SIZE)
        ref.mark_redux(5, 0, "+")
        ref.mark_redux(5, 1, "*")
        _assert_same(native, ref)
        assert bool(native.nx[5])

    def test_eager_would_fail_matches_numpy(self, kernels):
        stream = (
            np.array([KIND_WRITE, KIND_READ], dtype=np.int64),
            np.array([4, 4], dtype=np.int64),
            np.zeros(2, dtype=np.int64),
            np.array([0, 2], dtype=np.int64),  # exposed later read
            np.arange(2, dtype=np.int64),
        )
        native = ShadowArray("a", SIZE, eager=True)
        ref = ShadowArray("a", SIZE, eager=True)
        staged_native = native.stage_stream_vec(*stream, kernels=kernels)
        staged_ref = ref.stage_stream_vec(*stream)
        assert staged_native.would_fail
        assert staged_ref.would_fail


class TestCommitKernels:
    def test_fold_partials_matches_ufunc_at(self, kernels):
        rng = np.random.default_rng(3)
        for op_code, fold in ((1, np.add.at), (2, np.multiply.at)):
            procs = rng.integers(0, 4, size=50)
            elems = rng.integers(0, 6, size=50)
            vals = rng.uniform(0.5, 1.5, size=50)
            acc = np.ones((4, 6))
            ref = acc.copy()
            kernels.fold_partials(procs, elems, vals, acc, op_code)
            fold(ref, (procs, elems), vals)
            np.testing.assert_array_equal(acc, ref)

    def test_scatter_writes_last_wins(self, kernels):
        procs = np.array([0, 1, 0, 0], dtype=np.int64)
        elems = np.array([2, 2, 2, 3], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        stamps = np.array([10, 11, 12, 13], dtype=np.int64)
        data = np.zeros((2, 5))
        wstamp = np.full((2, 5), -1, dtype=np.int64)
        kernels.scatter_writes(procs, elems, vals, stamps, data, wstamp)
        assert data[0, 2] == 3.0 and wstamp[0, 2] == 12  # last write wins
        assert data[1, 2] == 2.0 and wstamp[1, 2] == 11
        assert data[0, 3] == 4.0 and wstamp[0, 3] == 13


class TestFusedOrder:
    def test_matches_lexsort_on_small_keys(self):
        rng = np.random.default_rng(5)
        idx = rng.integers(0, 100, size=200)
        rank = rng.integers(0, 50, size=200)
        np.testing.assert_array_equal(
            fused_order(idx, rank), np.lexsort((rank, idx))
        )

    def test_huge_sparse_indices_do_not_overflow(self):
        # Shadow sizes >= 2**31 must not wrap the fused int32 key; the
        # guard promotes to int64 (and to lexsort past 2**62).
        idx = np.array([2**31 + 7, 3, 2**31 + 7, 2**33], dtype=np.int64)
        rank = np.array([1, 0, 0, 2], dtype=np.int64)
        np.testing.assert_array_equal(
            fused_order(idx, rank), np.lexsort((rank, idx))
        )

    def test_key_space_past_int62_falls_back_to_lexsort(self):
        idx = np.array([2**61, 0, 2**61], dtype=np.int64)
        rank = np.array([5, 1, 2], dtype=np.int64)
        np.testing.assert_array_equal(
            fused_order(idx, rank), np.lexsort((rank, idx))
        )


class TestLoading:
    def test_numba_absent_records_reason(self):
        jit_kernels.reset_for_tests()
        try:
            import numba  # noqa: F401
            pytest.skip("Numba installed: the unavailable path cannot run")
        except ImportError:
            pass
        assert load_kernels() is None
        assert not jit_kernels.available()
        assert "numba" in jit_kernels.unavailable_reason()
        jit_kernels.reset_for_tests()

    def test_force_python_hook_returns_uncompiled_set(self, kernels):
        assert isinstance(kernels, KernelSet)
        assert not kernels.native
        assert load_kernels() is kernels  # memoized

    def test_warm_up_drives_every_kernel(self, kernels):
        assert warm_up(kernels) >= 0.0


class TestKernelCache:
    def test_ensure_warms_once_per_key(self, kernels):
        cache = KernelCache()
        assert not cache.any_warm()
        first = cache.ensure("loop-a|f8", kernels)
        assert first >= 0.0
        assert cache.any_warm()
        assert cache.ensure("loop-a|f8", kernels) == 0.0
        assert cache.ensure("loop-b|f8", kernels) >= 0.0
        assert len(cache) == 2
        cache.clear()
        assert not cache.any_warm()

    def test_module_singleton_exists(self):
        assert isinstance(kernel_cache, KernelCache)
