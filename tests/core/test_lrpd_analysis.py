"""Analysis-phase tests: the LRPD/PD pass-fail logic over shadows."""


from repro.core.lrpd import StripAggregator, analyze_shadows
from repro.core.outcomes import TestMode
from repro.core.shadow import Granularity, ShadowMarker


def marker_with(marks, size=8, granularity=Granularity.ITERATION):
    """marks: list of (op, element(1-based), granule [, redux op])."""
    marker = ShadowMarker({"a": size}, granularity=granularity)
    for mark in marks:
        kind, element, granule = mark[0], mark[1], mark[2]
        marker.set_granule(granule)
        if kind == "w":
            marker.on_write("a", element)
        elif kind == "r":
            marker.on_read("a", element)
        else:
            marker.on_redux("a", element, mark[3])
    return marker


def analyze(marks, mode=TestMode.LRPD, granularity=Granularity.ITERATION, **kw):
    return analyze_shadows(marker_with(marks, granularity=granularity), mode, **kw)


class TestFullyParallel:
    def test_disjoint_writes_pass_fully_parallel(self):
        result = analyze([("w", 1, 0), ("w", 2, 1), ("r", 3, 0)])
        assert result.passed
        assert result.fully_parallel

    def test_no_marks_is_trivially_parallel(self):
        result = analyze([])
        assert result.passed

    def test_multi_written_element_not_fully_parallel(self):
        result = analyze([("w", 1, 0), ("w", 1, 1)])
        assert result.passed          # dynamic last-value handles it
        assert not result.fully_parallel


class TestFlowFailures:
    def test_write_then_exposed_read_fails(self):
        result = analyze([("w", 1, 0), ("r", 1, 1)])
        assert not result.passed
        assert result.failed_arrays() == ["a"]

    def test_anti_direction_passes_directionally(self):
        result = analyze([("r", 1, 0), ("w", 1, 1)])
        assert result.passed

    def test_anti_direction_fails_bit_version(self):
        result = analyze([("r", 1, 0), ("w", 1, 1)], directional=False)
        assert not result.passed

    def test_same_granule_rmw_passes(self):
        result = analyze([("r", 1, 3), ("w", 1, 3)])
        assert result.passed

    def test_covered_read_passes(self):
        result = analyze([("w", 1, 2), ("r", 1, 2)])
        assert result.passed
        assert result.details["a"].privatized_elements == 1


class TestReductions:
    def test_pure_reduction_passes(self):
        result = analyze([("x", 1, 0, "+"), ("x", 1, 1, "+"), ("x", 1, 2, "+")])
        assert result.passed
        assert result.details["a"].reduction_elements == 1

    def test_mixed_ops_fail(self):
        result = analyze([("x", 1, 0, "+"), ("x", 1, 1, "*")])
        assert not result.passed

    def test_redux_plus_plain_access_fails(self):
        result = analyze([("x", 1, 0, "+"), ("w", 1, 1)])
        assert not result.passed

    def test_redux_plus_plain_same_granule_fails(self):
        # Order dependence within one granule (write + reduction update on
        # the same element) must fail even directionally.
        result = analyze([("w", 1, 3), ("x", 1, 3, "+")])
        assert not result.passed

    def test_pd_mode_ignores_reduction_exemption(self):
        marks = [("x", 1, 0, "+"), ("x", 1, 1, "+")]
        assert analyze(marks, mode=TestMode.LRPD).passed
        assert not analyze(marks, mode=TestMode.PD).passed


class TestProcessorWise:
    def test_covered_within_processor_passes(self):
        result = analyze(
            [("w", 1, 0), ("r", 1, 0)], granularity=Granularity.PROCESSOR
        )
        assert result.passed

    def test_multi_proc_write_with_read_fails(self):
        # Element written by two processors and read (even covered): the
        # reading processor may need the other's value.
        result = analyze(
            [("w", 1, 0), ("r", 1, 0), ("w", 1, 1)],
            granularity=Granularity.PROCESSOR,
        )
        assert not result.passed

    def test_multi_proc_write_only_passes(self):
        result = analyze(
            [("w", 1, 0), ("w", 1, 1)], granularity=Granularity.PROCESSOR
        )
        assert result.passed


class TestStrictPaperMode:
    def test_multi_write_fails_without_dynamic_last_value(self):
        marks = [("w", 1, 0), ("w", 1, 1)]
        assert analyze(marks).passed
        assert not analyze(marks, dynamic_last_value=False).passed

    def test_redux_elements_exempt_from_strict_tw(self):
        marks = [("x", 1, 0, "+"), ("x", 1, 1, "+")]
        assert analyze(marks, dynamic_last_value=False).passed


class TestResultRecords:
    def test_tw_tm_reported(self):
        result = analyze([("w", 1, 0), ("w", 1, 1), ("w", 2, 1)])
        detail = result.details["a"]
        assert detail.tw == 3
        assert detail.tm == 2

    def test_describe_mentions_outcome(self):
        passed = analyze([("w", 1, 0)])
        failed = analyze([("w", 1, 0), ("r", 1, 1)])
        assert "passed" in passed.describe()
        assert "failed" in failed.describe()
        assert "a" in failed.describe()


class TestStripAggregator:
    """Folding passed, failed and DOACROSS-recovered strips."""

    def _fold(self, *strips):
        """strips: (marks, recovered) pairs; returns the aggregator."""
        agg = StripAggregator(TestMode.LRPD, Granularity.ITERATION)
        for marks, recovered in strips:
            marker = marker_with(marks)
            agg.add_strip(
                marker, analyze_shadows(marker, TestMode.LRPD),
                recovered=recovered,
            )
        return agg

    PASSING = [("w", 1, 0), ("w", 2, 1), ("r", 3, 0)]
    FAILING = [("w", 1, 0), ("r", 1, 1)]          # rewrites element 1
    FAILING_B = [("w", 5, 0), ("r", 5, 1)]

    def test_mixed_strip_counts(self):
        agg = self._fold(
            (self.PASSING, False),
            (self.FAILING, False),       # rolled back serially
            (self.FAILING_B, True),      # recovered as pipelined DOACROSS
        )
        assert agg.strips == 3
        assert agg.strips_failed == 2
        assert agg.strips_recovered == 1
        assert not agg.result().passed

    def test_recovered_strips_still_count_as_failures(self):
        agg = self._fold((self.FAILING, True))
        assert agg.strips_failed == 1
        assert agg.strips_recovered == 1
        assert not agg.result().passed

    def test_tw_adds_across_strips(self):
        agg = self._fold(
            (self.PASSING, False),
            (self.FAILING, False),
            (self.FAILING_B, True),
        )
        # 2 + 1 + 1 distinct (element, granule) writes across the strips.
        assert agg.result().details["a"].tw == 4

    def test_tm_unions_written_elements(self):
        # Element 1 is written in two strips but counts once in tm.
        agg = self._fold((self.PASSING, False), (self.FAILING, True))
        detail = agg.result().details["a"]
        assert detail.tm == 2
        assert detail.tw == 3
        assert not detail.fully_parallel  # tw != tm after the union

    def test_all_passing_strips_aggregate_to_pass(self):
        agg = self._fold(
            ([("w", 1, 0)], False),
            ([("w", 2, 0)], False),
        )
        assert agg.result().passed
        assert agg.strips_failed == 0
        assert agg.strips_recovered == 0

    def test_failed_elements_accumulate(self):
        agg = self._fold((self.FAILING, False), (self.FAILING_B, True))
        assert agg.result().details["a"].failed_elements == 2
