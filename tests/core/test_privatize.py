"""PrivateCopies: copy-in, stamping, dynamic last-value copy-out."""

import numpy as np
import pytest

from repro.core.privatize import PrivateCopies


def test_copy_in_initialization():
    base = np.array([1.0, 2.0, 3.0])
    copies = PrivateCopies("a", base, num_procs=2)
    assert copies.load(0, 1) == 2.0
    assert copies.load(1, 2) == 3.0


def test_store_isolated_per_processor():
    copies = PrivateCopies("a", np.zeros(3), num_procs=2)
    copies.store(0, 1, 5.0, iteration=0)
    assert copies.load(0, 1) == 5.0
    assert copies.load(1, 1) == 0.0


def test_copy_out_last_value_wins():
    shared = np.zeros(3)
    copies = PrivateCopies("a", shared, num_procs=3)
    copies.store(0, 1, 10.0, iteration=2)
    copies.store(1, 1, 20.0, iteration=7)   # highest iteration wins
    copies.store(2, 1, 30.0, iteration=5)
    count = copies.copy_out(shared)
    assert count == 1
    assert shared[1] == 20.0


def test_copy_out_untouched_elements_left_alone():
    shared = np.array([1.0, 2.0, 3.0])
    copies = PrivateCopies("a", shared, num_procs=2)
    copies.store(0, 0, 9.0, iteration=0)
    copies.copy_out(shared)
    assert shared.tolist() == [9.0, 2.0, 3.0]


def test_copy_out_exclusion_mask():
    shared = np.zeros(3)
    copies = PrivateCopies("a", shared, num_procs=1)
    copies.store(0, 0, 5.0, iteration=0)
    copies.store(0, 2, 7.0, iteration=1)
    exclude = np.array([True, False, False])
    count = copies.copy_out(shared, exclude=exclude)
    assert count == 1
    assert shared.tolist() == [0.0, 0.0, 7.0]


def test_written_mask():
    copies = PrivateCopies("a", np.zeros(4), num_procs=2)
    copies.store(1, 3, 1.0, iteration=0)
    assert copies.written_mask().tolist() == [False, False, False, True]


def test_integer_array_preserved():
    base = np.array([1, 2, 3], dtype=np.int64)
    copies = PrivateCopies("idx", base, num_procs=2)
    copies.store(0, 0, 7, iteration=0)
    assert copies.load(0, 0) == 7
    assert isinstance(copies.load(0, 0), int)


def test_invalid_proc_count_rejected():
    with pytest.raises(ValueError):
        PrivateCopies("a", np.zeros(2), num_procs=0)


def test_elements_initialized_accounting():
    copies = PrivateCopies("a", np.zeros(5), num_procs=3)
    assert copies.elements_initialized == 15
