"""ReductionPartials: identities, accumulation, merge."""

import math

import numpy as np
import pytest

from repro.core.reduction_exec import REDUCTION_IDENTITY, ReductionPartials


class TestIdentities:
    @pytest.mark.parametrize(
        "op,identity",
        [("+", 0.0), ("*", 1.0), ("min", math.inf), ("max", -math.inf)],
    )
    def test_identity_values(self, op, identity):
        assert REDUCTION_IDENTITY[op] == identity

    def test_untouched_load_returns_identity(self):
        partials = ReductionPartials("a", num_procs=2)
        assert partials.load(0, 3, "+") == 0.0
        assert partials.load(1, 3, "*") == 1.0


class TestAccumulation:
    def test_load_modify_store_chain(self):
        partials = ReductionPartials("a", num_procs=1)
        # Emulates t = a(j); a(j) = t + 5 executed twice.
        for contribution in (5.0, 3.0):
            current = partials.load(0, 2, "+")
            partials.store(0, 2, "+", current + contribution)
        assert partials.load(0, 2, "+") == 8.0

    def test_processors_isolated(self):
        partials = ReductionPartials("a", num_procs=2)
        partials.store(0, 1, "+", 4.0)
        assert partials.load(1, 1, "+") == 0.0


class TestMerge:
    def test_sum_merge_into_initial(self):
        shared = np.array([10.0, 20.0])
        partials = ReductionPartials("a", num_procs=2)
        partials.store(0, 0, "+", 1.0)
        partials.store(1, 0, "+", 2.0)
        merged = partials.merge_into(shared)
        assert merged == 1
        assert shared[0] == 13.0
        assert shared[1] == 20.0

    def test_product_merge(self):
        shared = np.array([2.0])
        partials = ReductionPartials("a", num_procs=2)
        partials.store(0, 0, "*", 3.0)
        partials.store(1, 0, "*", 5.0)
        partials.merge_into(shared)
        assert shared[0] == 30.0

    def test_min_merge(self):
        shared = np.array([5.0])
        partials = ReductionPartials("a", num_procs=2)
        partials.store(0, 0, "min", 7.0)
        partials.store(1, 0, "min", 2.0)
        partials.merge_into(shared)
        assert shared[0] == 2.0

    def test_max_merge(self):
        shared = np.array([5.0])
        partials = ReductionPartials("a", num_procs=1)
        partials.store(0, 0, "max", 9.0)
        partials.merge_into(shared)
        assert shared[0] == 9.0

    def test_valid_mask_restricts_merge(self):
        shared = np.array([1.0, 1.0])
        partials = ReductionPartials("a", num_procs=1)
        partials.store(0, 0, "+", 5.0)
        partials.store(0, 1, "+", 5.0)
        mask = np.array([True, False])
        merged = partials.merge_into(shared, valid_mask=mask)
        assert merged == 1
        assert shared.tolist() == [6.0, 1.0]

    def test_touched_helpers(self):
        partials = ReductionPartials("a", num_procs=2)
        partials.store(0, 1, "+", 1.0)
        partials.store(1, 3, "+", 1.0)
        assert partials.touched_elements() == {1, 3}
        assert partials.touched_mask(5).tolist() == [False, True, False, True, False]

    def test_invalid_proc_count_rejected(self):
        with pytest.raises(ValueError):
            ReductionPartials("a", num_procs=0)
