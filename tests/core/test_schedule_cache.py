"""Schedule reuse cache and pattern signature tests."""

import numpy as np

from repro.analysis.instrument import build_plan
from repro.core.outcomes import LrpdResult, TestMode
from repro.runtime.profile import ScheduleCache, pattern_signature
from repro.dsl.parser import parse
from repro.interp.env import Environment

SOURCE = (
    "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
    "  do i = 1, n\n    a(idx(i)) = v(i)\n  end do\nend\n"
)


def make(idx=None, n=8, v=None):
    program = parse(SOURCE)
    plan = build_plan(program)
    env = Environment(
        program,
        {
            "n": n,
            "idx": idx if idx is not None else np.arange(1, 9),
            "v": v if v is not None else np.zeros(8),
        },
    )
    return plan, env


class TestSignature:
    def test_same_pattern_same_signature(self):
        plan_a, env_a = make()
        plan_b, env_b = make()
        assert pattern_signature(plan_a, env_a) == pattern_signature(plan_b, env_b)

    def test_indirection_change_changes_signature(self):
        plan_a, env_a = make(idx=np.arange(1, 9))
        plan_b, env_b = make(idx=np.arange(8, 0, -1))
        assert pattern_signature(plan_a, env_a) != pattern_signature(plan_b, env_b)

    def test_bound_change_changes_signature(self):
        plan_a, env_a = make(n=8)
        plan_b, env_b = make(n=4)
        assert pattern_signature(plan_a, env_a) != pattern_signature(plan_b, env_b)

    def test_data_change_does_not_change_signature(self):
        # v feeds values, not addresses: the pattern is unchanged.
        plan_a, env_a = make(v=np.zeros(8))
        plan_b, env_b = make(v=np.ones(8))
        assert pattern_signature(plan_a, env_a) == pattern_signature(plan_b, env_b)

    def test_unextractable_pattern_gives_none(self):
        source = (
            "program p\n  integer i, k, n, iw(16)\n  real out(16)\n"
            "  do i = 1, n\n    k = iw(n + i)\n    iw(i) = k\n"
            "    out(k) = 1.0\n  end do\nend\n"
        )
        program = parse(source)
        plan = build_plan(program)
        env = Environment(program, {"n": 4})
        assert pattern_signature(plan, env) is None


class TestCache:
    def _result(self):
        return LrpdResult(mode=TestMode.LRPD, granularity="iteration")

    def test_record_and_lookup(self):
        cache = ScheduleCache()
        result = self._result()
        cache.record("loop1", "sig", result)
        assert cache.lookup("loop1", "sig") is result
        assert cache.hits == 1

    def test_miss_on_other_signature(self):
        cache = ScheduleCache()
        cache.record("loop1", "sig", self._result())
        assert cache.lookup("loop1", "other") is None

    def test_none_signature_never_cached(self):
        cache = ScheduleCache()
        cache.record("loop1", None, self._result())
        assert len(cache) == 0
        assert cache.lookup("loop1", None) is None

    def test_lookups_counted(self):
        cache = ScheduleCache()
        cache.lookup("x", "y")
        cache.lookup("x", "y")
        assert cache.lookups == 2


class TestCrossEngineReuse:
    def test_verdict_cached_under_one_engine_reused_under_another(self):
        """The cache key is (loop, access pattern) — the engine that
        produced the verdict is irrelevant, so a schedule recorded by a
        compiled run must be reused by a vectorized run (and the reused
        run's memory must match a fresh one's)."""
        from repro.machine.costmodel import fx80
        from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
        from repro.workloads.bdna import build_bdna

        workload = build_bdna(n=60)
        runner = LoopRunner(workload.program(), workload.inputs)

        first = runner.run(
            Strategy.SPECULATIVE,
            RunConfig(model=fx80().with_procs(4), engine="compiled",
                      use_schedule_cache=True),
        )
        assert not first.reused_schedule
        assert runner.profiles.hits == 0

        second = runner.run(
            Strategy.SPECULATIVE,
            RunConfig(model=fx80().with_procs(4), engine="vectorized",
                      use_schedule_cache=True),
        )
        assert second.reused_schedule
        assert runner.profiles.hits == 1
        assert second.passed == first.passed
        for name in first.env.arrays:
            np.testing.assert_array_equal(
                first.env.arrays[name], second.env.arrays[name], err_msg=name
            )
