"""Shadow array marking semantics tests."""


from repro.core.shadow import Granularity, ShadowArray, ShadowMarker


class TestMarkWrite:
    def test_sets_w_and_nx(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_write(2, granule=0)
        assert shadow.w[2]
        assert shadow.nx[2]
        assert not shadow.w[0]

    def test_tw_counts_per_element_granule_pair(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_write(1, 0)
        shadow.mark_write(1, 0)  # same granule: not recounted
        shadow.mark_write(1, 1)  # new granule: counted
        shadow.mark_write(2, 1)
        assert shadow.tw == 3

    def test_tm_distinct_elements(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_write(1, 0)
        shadow.mark_write(1, 5)
        shadow.mark_write(3, 2)
        assert shadow.tm == 2

    def test_multi_w_tracked(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_write(1, 0)
        assert not shadow.multi_w[1]
        shadow.mark_write(1, 3)
        assert shadow.multi_w[1]


class TestMarkRead:
    def test_exposed_read_sets_np(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_read(1, granule=0)
        assert shadow.r[1]
        assert shadow.np_[1]

    def test_covered_read_does_not_set_np(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_write(1, granule=0)
        shadow.mark_read(1, granule=0)
        assert shadow.r[1]
        assert not shadow.np_[1]

    def test_read_covered_only_by_same_granule(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_write(1, granule=0)
        shadow.mark_read(1, granule=1)
        assert shadow.np_[1]


class TestMarkRedux:
    def test_redux_sets_wrnp_but_not_nx(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_redux(1, 0, "+")
        assert shadow.w[1] and shadow.r[1] and shadow.np_[1]
        assert not shadow.nx[1]
        assert shadow.redux_touched[1]

    def test_consistent_op_stays_valid(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_redux(1, 0, "+")
        shadow.mark_redux(1, 3, "+")
        assert not shadow.nx[1]
        assert shadow.reduction_mask()[1]

    def test_conflicting_op_invalidates(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_redux(1, 0, "+")
        shadow.mark_redux(1, 1, "*")
        assert shadow.nx[1]
        assert not shadow.reduction_mask()[1]

    def test_redux_then_plain_access_invalidates(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_redux(1, 0, "+")
        shadow.mark_read(1, 1)
        assert shadow.nx[1]

    def test_reduction_op_of(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_redux(2, 0, "max")
        assert shadow.reduction_op_of(2) == "max"
        assert shadow.reduction_op_of(0) is None

    def test_redux_does_not_count_tw(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_redux(1, 0, "+")
        shadow.mark_redux(1, 1, "+")
        assert shadow.tw == 0


class TestDirectionalStamps:
    def test_flow_when_write_before_exposed_read(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_write(1, granule=2)
        shadow.mark_read(1, granule=5)
        assert shadow.flow_mask()[1]

    def test_no_flow_for_anti_direction(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_read(1, granule=2)   # exposed read first (earlier granule)
        shadow.mark_write(1, granule=5)  # write in a later granule
        assert not shadow.flow_mask()[1]

    def test_no_flow_same_granule_read_modify_write(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_read(1, granule=3)
        shadow.mark_write(1, granule=3)
        assert not shadow.flow_mask()[1]

    def test_marking_order_does_not_matter(self):
        shadow = ShadowArray("a", 4)
        # Granule 5's read marked before granule 2's write (emulated
        # interleaving): the flow must still be detected.
        shadow.mark_read(1, granule=5)
        shadow.mark_write(1, granule=2)
        assert shadow.flow_mask()[1]


class TestMasks:
    def test_privatized_mask(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_write(1, 0)
        shadow.mark_read(1, 0)   # covered
        shadow.mark_write(2, 0)
        shadow.mark_read(2, 1)   # exposed
        mask = shadow.privatized_mask()
        assert mask[1]
        assert not mask[2]

    def test_conflict_mask_bit_version(self):
        shadow = ShadowArray("a", 4)
        shadow.mark_write(1, 0)
        shadow.mark_read(1, 1)
        assert shadow.conflict_mask()[1]


class TestShadowMarker:
    def test_marker_translates_one_based_indices(self):
        marker = ShadowMarker({"a": 4})
        marker.set_granule(0)
        marker.on_write("a", 1)
        assert marker.shadows["a"].w[0]

    def test_marker_counts_marks(self):
        marker = ShadowMarker({"a": 4})
        marker.on_write("a", 1)
        marker.on_read("a", 2)
        marker.on_redux("a", 3, "+")
        assert marker.cost.marks == 3

    def test_granularity_recorded(self):
        marker = ShadowMarker({"a": 4}, granularity=Granularity.PROCESSOR)
        assert marker.granularity is Granularity.PROCESSOR
