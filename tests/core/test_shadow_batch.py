"""Batched shadow marking ≡ per-access marking, and in-place reset.

The compiled speculative engine flushes each granule's buffered access
stream through the vectorized batch primitives; these must be
observationally identical to replaying ``mark_write``/``mark_read``/
``mark_redux`` access by access — including which element an eager
failure reports.
"""

import numpy as np
import pytest

from repro.core.shadow import (
    KIND_READ,
    KIND_REDUX,
    KIND_WRITE,
    OP_CODES,
    Granularity,
    ShadowArray,
    ShadowMarker,
)
from repro.errors import SpeculationFailed

SIZE = 16

FIELDS = (
    "w", "r", "np_", "nx", "redux_touched", "multi_w",
    "_redux_op", "_last_write", "_min_write", "_max_exposed_read",
    "_min_exposed_read",
)


def assert_same_shadow(a: ShadowArray, b: ShadowArray) -> None:
    assert a.tw == b.tw
    assert a.tm == b.tm
    for field in FIELDS:
        np.testing.assert_array_equal(
            getattr(a, field), getattr(b, field), err_msg=field
        )


def random_stream(rng, length: int):
    kinds = rng.integers(0, 3, size=length)
    idx = rng.integers(0, SIZE, size=length)
    ops = np.where(kinds == KIND_REDUX, rng.integers(1, 5, size=length), 0)
    pos = np.arange(length, dtype=np.int64)
    return kinds, idx, ops, pos


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams_match_scalar_replay(self, seed):
        rng = np.random.default_rng(seed)
        batch = ShadowArray("a", SIZE)
        scalar = ShadowArray("a", SIZE)
        for granule in range(5):
            kinds, idx, ops, pos = random_stream(rng, int(rng.integers(1, 30)))
            batch.mark_stream_batch(kinds, idx, ops, pos, granule)
            scalar.replay_scalar(kinds, idx, ops, pos, granule)
            assert_same_shadow(batch, scalar)

    def test_mark_write_batch(self):
        batch = ShadowArray("a", SIZE)
        scalar = ShadowArray("a", SIZE)
        indices = [3, 3, 7, 0, 7, 3]
        batch.mark_write_batch(indices, granule=2)
        for index in indices:
            scalar.mark_write(index, granule=2)
        assert_same_shadow(batch, scalar)

    def test_mark_read_batch(self):
        batch = ShadowArray("a", SIZE)
        scalar = ShadowArray("a", SIZE)
        for shadow in (batch, scalar):
            shadow.mark_write(5, granule=0)
        indices = [5, 1, 5, 9]
        batch.mark_read_batch(indices, granule=0)
        for index in indices:
            scalar.mark_read(index, granule=0)
        assert_same_shadow(batch, scalar)

    def test_mark_redux_batch(self):
        batch = ShadowArray("a", SIZE)
        scalar = ShadowArray("a", SIZE)
        indices = [2, 2, 4]
        batch.mark_redux_batch(indices, granule=1, op="+")
        for index in indices:
            scalar.mark_redux(index, granule=1, op="+")
        assert_same_shadow(batch, scalar)

    def test_write_then_read_ordering_within_batch(self):
        # A write covering a later read of the same granule must be seen
        # in stream order: the read is not exposed.
        shadow = ShadowArray("a", SIZE)
        kinds = np.array([KIND_WRITE, KIND_READ])
        idx = np.array([4, 4])
        ops = np.zeros(2, dtype=np.int64)
        pos = np.arange(2, dtype=np.int64)
        shadow.mark_stream_batch(kinds, idx, ops, pos, granule=0)
        assert shadow.r[4] and not shadow.np_[4]

    def test_eager_batch_reports_same_element_as_scalar(self):
        eager_batch = ShadowArray("a", SIZE, eager=True)
        eager_scalar = ShadowArray("a", SIZE, eager=True)
        for shadow in (eager_batch, eager_scalar):
            shadow.mark_write(6, granule=0)
        # Granule 1 reads element 6 (a definite flow) mid-stream.
        kinds = np.array([KIND_READ, KIND_READ, KIND_WRITE])
        idx = np.array([1, 6, 2])
        ops = np.zeros(3, dtype=np.int64)
        pos = np.arange(3, dtype=np.int64)
        with pytest.raises(SpeculationFailed) as batch_fail:
            eager_batch.mark_stream_batch(kinds, idx, ops, pos, granule=1)
        with pytest.raises(SpeculationFailed) as scalar_fail:
            eager_scalar.replay_scalar(kinds, idx, ops, pos, granule=1)
        assert batch_fail.value.element == scalar_fail.value.element == 6
        assert batch_fail.value.array == "a"

    def test_redux_opcode_roundtrip(self):
        # Each operator code marks with the operator it encodes.
        for op, code in OP_CODES.items():
            batch = ShadowArray("a", SIZE)
            scalar = ShadowArray("a", SIZE)
            kinds = np.array([KIND_REDUX])
            idx = np.array([3])
            ops = np.array([code], dtype=np.int64)
            pos = np.zeros(1, dtype=np.int64)
            batch.mark_stream_batch(kinds, idx, ops, pos, granule=0)
            scalar.mark_redux(3, granule=0, op=op)
            assert_same_shadow(batch, scalar)


class TestReset:
    def test_shadow_reset_equals_fresh(self):
        shadow = ShadowArray("a", SIZE, eager=True)
        rng = np.random.default_rng(42)
        kinds, idx, ops, pos = random_stream(rng, 25)
        try:
            shadow.replay_scalar(kinds, idx, ops, pos, granule=0)
        except SpeculationFailed:
            pass
        shadow.reset()
        assert_same_shadow(shadow, ShadowArray("a", SIZE, eager=True))
        assert shadow.eager  # preserved unless overridden

    def test_shadow_reset_can_flip_eager(self):
        shadow = ShadowArray("a", SIZE, eager=False)
        shadow.reset(eager=True)
        assert shadow.eager
        shadow.reset(eager=False)
        assert not shadow.eager

    def test_reset_shadow_recounts_tw(self):
        shadow = ShadowArray("a", SIZE)
        shadow.mark_write(1, granule=0)
        shadow.reset()
        # The last-write memory must be gone: the same (element, granule)
        # pair counts again after reset.
        shadow.mark_write(1, granule=0)
        assert shadow.tw == 1
        assert not shadow.multi_w[1]

    def test_marker_reset_recycles_all_shadows(self):
        marker = ShadowMarker(
            {"a": SIZE, "b": 4}, granularity=Granularity.ITERATION, eager=True
        )
        marker.set_granule(3)
        marker.shadows["a"].mark_write(0, granule=3)
        marker.shadows["b"].mark_read(2, granule=3)
        marker.cost.marks += 1
        marker.reset(Granularity.PROCESSOR, eager=False)
        assert marker.granularity is Granularity.PROCESSOR
        assert marker.granule == 0
        assert marker.cost.marks == 0  # fresh cost counter
        for name, size in (("a", SIZE), ("b", 4)):
            assert_same_shadow(marker.shadows[name], ShadowArray(name, size))
            assert not marker.shadows[name].eager
