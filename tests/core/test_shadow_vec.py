"""Vector-input marking entry points vs looped scalar marking.

The vectorized whole-block engine marks entire multi-granule access
streams in one call; these tests pin the contract that
``mark_write_vec``/``mark_read_vec``/``mark_red_vec`` (and the general
``mark_stream_vec``) are bit-identical to replaying the same accesses
through the scalar marking operations, including repeated indices within
one call and eager-failure parity.
"""

import numpy as np
import pytest

from repro.core.shadow import (
    KIND_READ,
    KIND_REDUX,
    KIND_WRITE,
    OP_NAMES,
    ShadowArray,
)
from repro.errors import SpeculationFailed

SIZE = 24


def _state(shadow: ShadowArray) -> tuple:
    return (
        shadow.w.copy(), shadow.r.copy(), shadow.np_.copy(), shadow.nx.copy(),
        shadow.redux_touched.copy(), shadow.multi_w.copy(),
        shadow._redux_op.copy(), shadow._last_write.copy(),
        shadow._min_write.copy(), shadow._max_exposed_read.copy(),
        shadow._min_exposed_read.copy(),
        shadow.tw,
    )


def _assert_same(a: ShadowArray, b: ShadowArray) -> None:
    for got, want in zip(_state(a), _state(b)):
        if isinstance(got, np.ndarray):
            assert np.array_equal(got, want)
        else:
            assert got == want


def _replay(shadow: ShadowArray, stream) -> None:
    for kind, index, granule, op in stream:
        if kind == KIND_WRITE:
            shadow.mark_write(index, granule)
        elif kind == KIND_READ:
            shadow.mark_read(index, granule)
        else:
            shadow.mark_redux(index, granule, OP_NAMES[op])


def _columns(stream):
    kinds = np.array([s[0] for s in stream], dtype=np.int64)
    idx = np.array([s[1] for s in stream], dtype=np.int64)
    grans = np.array([s[2] for s in stream], dtype=np.int64)
    ops = np.array([s[3] for s in stream], dtype=np.int64)
    rank = np.arange(len(stream), dtype=np.int64)
    return kinds, idx, ops, grans, rank


def test_mark_write_vec_matches_scalar_loop():
    indices = [3, 7, 3, 3, 9, 7]
    iters = [0, 0, 1, 1, 2, 3]
    vec = ShadowArray("a", SIZE)
    vec.mark_write_vec(indices, iters)
    ref = ShadowArray("a", SIZE)
    for i, g in zip(indices, iters):
        ref.mark_write(i, g)
    _assert_same(vec, ref)
    assert vec.tw == ref.tw == 5  # repeated (3, 1) counted once


def test_mark_read_vec_matches_scalar_loop():
    indices = [5, 5, 2, 5, 11]
    iters = [0, 1, 1, 1, 4]
    vec = ShadowArray("a", SIZE)
    vec.mark_write(5, 1)  # covers the granule-1 reads of element 5
    vec.mark_read_vec(indices, iters)
    ref = ShadowArray("a", SIZE)
    ref.mark_write(5, 1)
    for i, g in zip(indices, iters):
        ref.mark_read(i, g)
    _assert_same(vec, ref)


def test_mark_red_vec_matches_scalar_loop():
    indices = [4, 4, 8, 4]
    iters = [0, 2, 2, 5]
    vec = ShadowArray("a", SIZE)
    vec.mark_red_vec(indices, iters, "+")
    ref = ShadowArray("a", SIZE)
    for i, g in zip(indices, iters):
        ref.mark_redux(i, g, "+")
    _assert_same(vec, ref)
    assert not vec.nx.any()


def test_repeated_indices_within_one_call_count_tw_once_per_granule():
    vec = ShadowArray("a", SIZE)
    vec.mark_write_vec([6, 6, 6, 6], [0, 0, 1, 0])
    ref = ShadowArray("a", SIZE)
    for i, g in [(6, 0), (6, 0), (6, 1), (6, 0)]:
        ref.mark_write(i, g)
    _assert_same(vec, ref)
    assert vec.tw == 3  # granule changes: pre->0, 0->1, 1->0
    assert bool(vec.multi_w[6])


def test_mixed_stream_vec_matches_scalar_replay():
    rng = np.random.default_rng(7)
    for trial in range(40):
        stream = []
        for _ in range(rng.integers(1, 60)):
            kind = int(rng.integers(0, 3))
            index = int(rng.integers(0, SIZE))
            granule = int(rng.integers(0, 6))
            op = int(rng.integers(1, 3)) if kind == KIND_REDUX else 0
            stream.append((kind, index, granule, op))
        vec = ShadowArray("a", SIZE)
        ref = ShadowArray("a", SIZE)
        # Pre-existing marks exercise the pre-batch fallback paths.
        vec.mark_write(0, 2)
        ref.mark_write(0, 2)
        vec.mark_redux(1, 0, "*")
        ref.mark_redux(1, 0, "*")
        kinds, idx, ops, grans, rank = _columns(stream)
        vec.mark_stream_vec(kinds, idx, ops, grans, rank)
        _replay(ref, stream)
        _assert_same(vec, ref)


def test_rank_order_decides_covering_not_input_order():
    # Same accesses, ranks reversed: the read comes before the write in
    # rank order, so it is exposed.
    shadow = ShadowArray("a", SIZE)
    kinds = np.array([KIND_WRITE, KIND_READ], dtype=np.int64)
    idx = np.array([3, 3], dtype=np.int64)
    ops = np.zeros(2, dtype=np.int64)
    grans = np.array([1, 1], dtype=np.int64)
    shadow.mark_stream_vec(kinds, idx, ops, grans, np.array([5, 2], dtype=np.int64))
    assert bool(shadow.np_[3])

    covered = ShadowArray("a", SIZE)
    covered.mark_stream_vec(kinds, idx, ops, grans, np.array([2, 5], dtype=np.int64))
    assert not covered.np_[3]


def test_eager_vec_raises_same_element_and_state_as_scalar():
    stream = [
        (KIND_WRITE, 4, 0, 0),
        (KIND_READ, 4, 2, 0),   # exposed read after another granule's write
        (KIND_WRITE, 9, 3, 0),
    ]
    kinds, idx, ops, grans, rank = _columns(stream)
    vec = ShadowArray("a", SIZE, eager=True)
    with pytest.raises(SpeculationFailed) as vec_err:
        vec.mark_stream_vec(kinds, idx, ops, grans, rank)
    ref = ShadowArray("a", SIZE, eager=True)
    with pytest.raises(SpeculationFailed) as ref_err:
        _replay(ref, stream)
    assert str(vec_err.value) == str(ref_err.value)
    _assert_same(vec, ref)


def test_eager_vec_passing_stream_commits():
    vec = ShadowArray("a", SIZE, eager=True)
    vec.mark_write_vec([1, 2, 1], [0, 1, 2])
    assert vec.tw == 3


def test_redux_op_conflict_marks_nx():
    vec = ShadowArray("a", SIZE)
    kinds = np.array([KIND_REDUX, KIND_REDUX], dtype=np.int64)
    idx = np.array([5, 5], dtype=np.int64)
    ops = np.array([1, 2], dtype=np.int64)  # '+' then '*'
    grans = np.array([0, 1], dtype=np.int64)
    rank = np.arange(2, dtype=np.int64)
    vec.mark_stream_vec(kinds, idx, ops, grans, rank)
    ref = ShadowArray("a", SIZE)
    ref.mark_redux(5, 0, "+")
    ref.mark_redux(5, 1, "*")
    _assert_same(vec, ref)
    assert bool(vec.nx[5])


def test_empty_stream_is_a_noop():
    vec = ShadowArray("a", SIZE)
    vec.mark_write_vec([], [])
    assert vec.tw == 0
    assert not vec.w.any()
