"""ProgramBuilder tests: built trees equal parsed trees."""

import pytest

from repro.dsl.builder import ProgramBuilder, call, neg
from repro.dsl.parser import parse
from repro.dsl.printer import to_source


def test_build_simple_loop_equals_parsed():
    b = ProgramBuilder("saxpy")
    b.integer("i", "n").real("alpha")
    b.real_array("x", 10).real_array("y", 10)
    i = b.var("i")
    with b.do("i", 1, b.var("n")):
        b.assign(b.aref("y", i), b.var("alpha") * b.aref("x", i) + b.aref("y", i))
    built = b.build()

    parsed = parse(
        "program saxpy\n  integer i, n\n  real alpha\n  real x(10)\n  real y(10)\n"
        "  do i = 1, n\n    y(i) = alpha * x(i) + y(i)\n  end do\nend\n"
    )
    assert built == parsed


def test_if_else_builder():
    b = ProgramBuilder("p")
    b.integer("i").real("x")
    with b.if_(b.var("i").eq_(1)):
        b.assign("x", 1.0)
    with b.else_():
        b.assign("x", 2.0)
    program = b.build()
    parsed = parse(
        "program p\n  integer i\n  real x\n"
        "  if (i == 1) then\n    x = 1.0\n  else\n    x = 2.0\n  end if\nend\n"
    )
    assert program == parsed


def test_while_builder():
    b = ProgramBuilder("p")
    b.integer("i")
    with b.while_(b.var("i").gt_(0)):
        b.assign("i", b.var("i") - 1)
    assert b.build() == parse(
        "program p\n  integer i\n  do while (i > 0)\n    i = i - 1\n  end do\nend\n"
    )


def test_negative_literals_match_parser_shape():
    b = ProgramBuilder("p")
    b.real("x")
    b.assign("x", -2.5)
    assert b.build() == parse("program p\n  real x\n  x = -2.5\nend\n")


def test_neg_and_call_helpers():
    b = ProgramBuilder("p")
    b.real("x", "y")
    b.assign("x", neg(b.var("y")) + call("abs", b.var("y")))
    assert b.build() == parse("program p\n  real x, y\n  x = -y + abs(y)\nend\n")


def test_built_program_prints_and_reparses():
    b = ProgramBuilder("p")
    b.integer("i", "n").real_array("a", 8)
    with b.do("i", 1, "n"):
        b.assign(b.aref("a", b.var("i")), call("mod", b.var("i"), 3) + 0.5)
    program = b.build()
    assert parse(to_source(program)) == program


def test_else_without_if_rejected():
    b = ProgramBuilder("p")
    b.real("x")
    with pytest.raises(ValueError):
        with b.else_():
            pass


def test_double_else_rejected():
    b = ProgramBuilder("p")
    b.integer("i").real("x")
    with b.if_(b.var("i").eq_(1)):
        b.assign("x", 1.0)
    with b.else_():
        b.assign("x", 2.0)
    with pytest.raises(ValueError):
        with b.else_():
            pass


def test_duplicate_declaration_rejected():
    b = ProgramBuilder("p")
    b.real("x")
    with pytest.raises(ValueError):
        b.integer("x")


def test_aref_requires_declared_array():
    b = ProgramBuilder("p")
    with pytest.raises(ValueError):
        b.aref("ghost", 1)


def test_unclosed_block_rejected():
    b = ProgramBuilder("p")
    b.integer("i", "n")
    cm = b.do("i", 1, "n")
    cm.__enter__()
    with pytest.raises(ValueError):
        b.build()


def test_boolean_literal_rejected():
    b = ProgramBuilder("p")
    b.real("x")
    with pytest.raises(TypeError):
        b.assign("x", True)


def test_multidim_builder_matches_parser():
    b = ProgramBuilder("grid")
    b.integer("i", "j").real_array("a", 4, 3)
    b.assign(b.aref("a", b.var("i"), b.var("j")), 1.0)
    built = b.build()
    parsed = parse(
        "program grid\n  integer i, j\n  real a(4, 3)\n  a(i, j) = 1.0\nend\n"
    )
    assert built == parsed


def test_multidim_builder_arity_checked():
    b = ProgramBuilder("p")
    b.integer("i").real_array("t", 2, 3, 4)
    with pytest.raises(ValueError):
        b.aref("t", b.var("i"), b.var("i"))


def test_builder_flat_access_to_multidim():
    b = ProgramBuilder("p")
    b.integer("i").real_array("a", 4, 3)
    ref = b.aref("a", b.var("i"))
    assert ref.index == b.var("i")


def test_builder_rejects_bad_extents():
    b = ProgramBuilder("p")
    with pytest.raises(ValueError):
        b.real_array("z")
    with pytest.raises(ValueError):
        b.real_array("q", 4, 0)
