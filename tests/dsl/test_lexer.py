"""Lexer tests."""

import pytest

from repro.dsl.lexer import tokenize
from repro.dsl.tokens import EOF, INT, NAME, NEWLINE, OP, REAL
from repro.errors import DslSyntaxError


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind not in (NEWLINE, EOF)]


class TestBasics:
    def test_empty_source_gives_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_names_are_lowercased(self):
        assert texts("Foo BAR") == ["foo", "bar"]

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind == INT
        assert token.text == "42"

    def test_real_literal(self):
        token = tokenize("3.25")[0]
        assert token.kind == REAL

    def test_real_with_exponent(self):
        assert tokenize("1e6")[0].kind == REAL
        assert tokenize("2.5e-3")[0].kind == REAL
        assert tokenize("1E+2")[0].kind == REAL

    def test_integer_not_real_when_dot_starts_operator(self):
        # "1.and." must lex as INT(1), NAME(and), not a real literal
        tokens = tokenize("1.and.2")
        assert tokens[0].kind == INT
        assert tokens[1].text == "and"

    def test_leading_dot_real(self):
        assert tokenize(".5")[0].kind == REAL


class TestOperators:
    @pytest.mark.parametrize("op", ["**", "==", "/=", "<=", ">="])
    def test_multi_char_operator(self, op):
        token = tokenize(f"a {op} b")[1]
        assert token.kind == OP
        assert token.text == op

    def test_dotted_logical_normalized_to_word(self):
        assert texts("a .and. b") == ["a", "and", "b"]
        assert texts("a .or. b") == ["a", "or", "b"]
        assert texts(".not. a") == ["not", "a"]

    def test_power_not_two_stars(self):
        tokens = texts("a ** b")
        assert tokens == ["a", "**", "b"]


class TestLinesAndComments:
    def test_comment_runs_to_end_of_line(self):
        assert texts("a = 1 ! the answer\nb = 2") == ["a", "=", "1", "b", "=", "2"]

    def test_blank_lines_collapse(self):
        tokens = tokenize("a = 1\n\n\nb = 2")
        newline_count = sum(1 for t in tokens if t.kind == NEWLINE)
        assert newline_count == 2

    def test_semicolon_acts_as_newline(self):
        tokens = tokenize("a = 1; b = 2")
        assert any(t.kind == NEWLINE and t.text == ";" for t in tokens)

    def test_line_numbers_tracked(self):
        tokens = tokenize("a = 1\nb = 2\nc = 3")
        c_token = [t for t in tokens if t.text == "c"][0]
        assert c_token.line == 3

    def test_trailing_newline_synthesized(self):
        tokens = tokenize("a = 1")
        assert tokens[-2].kind == NEWLINE
        assert tokens[-1].kind == EOF


class TestErrors:
    def test_unexpected_character_raises_with_line(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            tokenize("a = 1\nb = @")
        assert excinfo.value.line == 2

    def test_unknown_unicode_rejected(self):
        with pytest.raises(DslSyntaxError):
            tokenize("a = π")
