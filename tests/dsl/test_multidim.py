"""Multi-dimensional array support (parse-time linearization)."""

import numpy as np
import pytest

from repro.dsl.ast_nodes import ArrayDecl
from repro.dsl.parser import parse
from repro.dsl.printer import to_source
from repro.errors import DslSyntaxError, InterpError
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter

from tests.conftest import speculative_vs_serial

TWOD = """
program twod
  integer i, j, n, m
  real a(4, 3), b(4, 3)
  do j = 1, m
    do i = 1, n
      a(i, j) = b(i, j) * 2.0 + real(i * 10 + j)
    end do
  end do
end
"""


class TestDeclaration:
    def test_dims_recorded_and_size_is_product(self):
        program = parse(TWOD)
        decl = program.array_decls()["a"]
        assert decl.dims == (4, 3)
        assert decl.size == 12

    def test_one_d_decl_has_singleton_dims(self):
        program = parse("program p\n  real v(7)\nend\n")
        assert program.array_decls()["v"].dims == (7,)

    def test_three_d_declaration(self):
        program = parse("program p\n  real t(2, 3, 4)\nend\n")
        assert program.array_decls()["t"].size == 24

    def test_zero_extent_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse("program p\n  real a(4, 0)\nend\n")

    def test_decl_equality_includes_dims(self):
        a = ArrayDecl(name="x", kind="real", size=12, dims=(4, 3))
        b = ArrayDecl(name="x", kind="real", size=12, dims=(3, 4))
        assert a != b


class TestLinearization:
    def test_column_major_subscript(self):
        # a(i, j) -> i + (j-1)*4 for a(4, 3)
        program = parse(TWOD)
        printed = to_source(program)
        assert "a(i + (j - 1) * 4)" in printed

    def test_three_d_strides(self):
        program = parse(
            "program p\n  integer i, j, k\n  real t(2, 3, 4)\n"
            "  t(i, j, k) = 1.0\nend\n"
        )
        printed = to_source(program)
        assert "t(i + (j - 1) * 2 + (k - 1) * 6)" in printed

    def test_partial_arity_rejected(self):
        # 1 subscript = flat access (allowed); any other mismatch is an error.
        with pytest.raises(DslSyntaxError):
            parse(
                "program p\n  integer i\n  real t(2, 3, 4)\n  t(i, i) = 1.0\nend\n"
            )
        with pytest.raises(DslSyntaxError):
            parse("program p\n  integer i\n  real v(4)\n  v(i, i) = 1.0\nend\n")

    def test_flat_access_to_multidim_allowed(self):
        program = parse(
            "program p\n  integer i\n  real a(4, 3)\n  a(i) = 1.0\nend\n"
        )
        assert to_source(program).count("a(i)") == 1

    def test_lowered_program_round_trips(self):
        program = parse(TWOD)
        assert parse(to_source(program)) == program


class TestExecution:
    def test_matches_numpy_semantics(self):
        program = parse(TWOD)
        b = np.arange(12.0).reshape(4, 3)
        env = Environment(program, {"n": 4, "m": 3, "b": b})
        Interpreter(program, env, value_based=False).run()
        result = env.array_shaped("a")
        i = np.arange(1, 5)[:, None]
        j = np.arange(1, 4)[None, :]
        np.testing.assert_allclose(result, b * 2.0 + (i * 10 + j))

    def test_shaped_input_equivalent_to_flat_fortran_order(self):
        program = parse(TWOD)
        b = np.arange(12.0).reshape(4, 3)
        env_shaped = Environment(program, {"n": 4, "m": 3, "b": b})
        env_flat = Environment(
            program, {"n": 4, "m": 3, "b": b.flatten(order="F")}
        )
        np.testing.assert_array_equal(
            env_shaped.arrays["b"], env_flat.arrays["b"]
        )

    def test_wrong_shape_rejected(self):
        program = parse(TWOD)
        with pytest.raises(InterpError):
            Environment(program, {"b": np.zeros((3, 4))})

    def test_array_shaped_requires_declared(self):
        program = parse(TWOD)
        env = Environment(program, {})
        with pytest.raises(InterpError):
            env.array_shaped("ghost")


class TestRuntimeIntegration:
    def test_two_d_gather_scatter_speculates(self):
        source = """
program grid
  integer i, n
  integer row(12), col(12)
  real cell(6, 4), v(12)
  do i = 1, n
    cell(row(i), col(i)) = cell(row(i), col(i)) + v(i)
  end do
end
"""
        rng = np.random.default_rng(5)
        inputs = {
            "n": 12,
            "row": rng.integers(1, 7, 12),
            "col": rng.integers(1, 5, 12),
            "v": rng.normal(size=12),
            "cell": rng.normal(size=(6, 4)),
        }
        report = speculative_vs_serial(source, inputs, arrays=["cell"])
        assert report.passed
        # The 2-D accumulation is recognized as a reduction on the
        # linearized storage.
        assert report.test_result.details["cell"].reduction_elements > 0
