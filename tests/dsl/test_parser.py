"""Parser tests."""

import pytest

from repro.dsl.ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    If,
    Num,
    ScalarDecl,
    UnaryOp,
    Var,
    While,
)
from repro.dsl.parser import parse
from repro.errors import DslSyntaxError


def parse_stmt(body: str, decls: str = "integer i, j, n\n  real x, y\n  real a(10)"):
    program = parse(f"program t\n  {decls}\n{body}\nend\n")
    return program.body


def parse_expr(expr: str, decls: str = "integer i, j, n\n  real x, y\n  real a(10)"):
    body = parse_stmt(f"  x = {expr}", decls)
    assert isinstance(body[0], Assign)
    return body[0].expr


class TestDeclarations:
    def test_scalar_declarations(self):
        program = parse("program p\n  integer n\n  real x\nend\n")
        assert program.decls == [ScalarDecl("n", "integer"), ScalarDecl("x", "real")]

    def test_array_declaration_with_size(self):
        program = parse("program p\n  real a(100)\nend\n")
        assert program.decls == [ArrayDecl("a", "real", 100)]

    def test_comma_separated_mixed_declarations(self):
        program = parse("program p\n  integer n, idx(5), m\nend\n")
        assert [d.name for d in program.decls] == ["n", "idx", "m"]
        assert isinstance(program.decls[1], ArrayDecl)

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse("program p\n  integer n\n  real n\nend\n")


class TestStatements:
    def test_scalar_assignment(self):
        (stmt,) = parse_stmt("  x = 1.5")
        assert isinstance(stmt, Assign)
        assert stmt.target == Var("x")
        assert stmt.expr == Num(1.5)

    def test_array_assignment(self):
        (stmt,) = parse_stmt("  a(i) = x")
        assert isinstance(stmt.target, ArrayRef)
        assert stmt.target.name == "a"

    def test_assignment_to_undeclared_array_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_stmt("  q(i) = 1.0")

    def test_do_loop(self):
        (stmt,) = parse_stmt("  do i = 1, n\n    x = x + 1.0\n  end do")
        assert isinstance(stmt, Do)
        assert stmt.var == "i"
        assert stmt.step is None
        assert len(stmt.body) == 1

    def test_do_loop_with_step(self):
        (stmt,) = parse_stmt("  do i = 1, n, 2\n    x = 1.0\n  end do")
        assert stmt.step == Num(2.0, is_int=True)

    def test_enddo_one_word(self):
        (stmt,) = parse_stmt("  do i = 1, n\n    x = 1.0\n  enddo")
        assert isinstance(stmt, Do)

    def test_do_while(self):
        (stmt,) = parse_stmt("  do while (i > 0)\n    i = i - 1\n  end do")
        assert isinstance(stmt, While)

    def test_if_then_endif(self):
        (stmt,) = parse_stmt("  if (x > 0.0) then\n    y = 1.0\n  end if")
        assert isinstance(stmt, If)
        assert stmt.else_body == []

    def test_if_else(self):
        (stmt,) = parse_stmt(
            "  if (x > 0.0) then\n    y = 1.0\n  else\n    y = 2.0\n  end if"
        )
        assert len(stmt.else_body) == 1

    def test_elseif_chain_nests(self):
        (stmt,) = parse_stmt(
            "  if (i == 1) then\n    y = 1.0\n"
            "  else if (i == 2) then\n    y = 2.0\n"
            "  else\n    y = 3.0\n  end if"
        )
        assert isinstance(stmt.else_body[0], If)
        inner = stmt.else_body[0]
        assert len(inner.else_body) == 1

    def test_elseif_one_word(self):
        (stmt,) = parse_stmt(
            "  if (i == 1) then\n    y = 1.0\n  elseif (i == 2) then\n"
            "    y = 2.0\n  endif"
        )
        assert isinstance(stmt.else_body[0], If)

    def test_nested_loops(self):
        (stmt,) = parse_stmt(
            "  do i = 1, n\n    do j = 1, n\n      x = x + 1.0\n"
            "    end do\n  end do"
        )
        assert isinstance(stmt.body[0], Do)

    def test_mismatched_terminator_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_stmt("  do i = 1, n\n    x = 1.0\n  end if")

    def test_loop_variable_cannot_be_array(self):
        with pytest.raises(DslSyntaxError):
            parse_stmt("  do a = 1, n\n    x = 1.0\n  end do")

    def test_unterminated_block_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse("program p\n  integer i, n\n  do i = 1, n\n    i = i\nend\n")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, BinOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinOp)
        assert expr.right.op == "*"

    def test_left_associative_subtraction(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, BinOp)
        assert expr.left.op == "-"

    def test_power_right_associative(self):
        expr = parse_expr("2 ** 3 ** 2")
        assert expr.op == "**"
        assert isinstance(expr.right, BinOp)

    def test_power_binds_tighter_than_unary_minus(self):
        expr = parse_expr("-2 ** 2")
        assert isinstance(expr, UnaryOp)
        assert isinstance(expr.operand, BinOp)

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, BinOp)

    def test_comparison_below_arithmetic(self):
        expr = parse_expr("i + 1 < j * 2")
        assert expr.op == "<"

    def test_and_or_precedence(self):
        expr = parse_expr("i < 1 or j < 2 and x < 3.0")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expr("not i == 1 and j == 2")
        assert expr.op == "and"
        assert isinstance(expr.left, UnaryOp)

    def test_unary_plus_is_dropped(self):
        assert parse_expr("+5") == Num(5.0, is_int=True)

    def test_intrinsic_call(self):
        expr = parse_expr("mod(i, 3)")
        assert isinstance(expr, Call)
        assert expr.func == "mod"
        assert len(expr.args) == 2

    def test_intrinsic_arity_checked(self):
        with pytest.raises(DslSyntaxError):
            parse_expr("mod(i)")

    def test_array_ref_vs_intrinsic_disambiguation(self):
        expr = parse_expr("a(i) + min(i, j)")
        assert isinstance(expr.left, ArrayRef)
        assert isinstance(expr.right, Call)

    def test_unknown_call_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_expr("frobnicate(i)")

    def test_nested_array_subscript(self):
        expr = parse_expr("a(a(i))", decls="integer i\n  real x\n  real a(10)")
        assert isinstance(expr.index, ArrayRef)


class TestProgramStructure:
    def test_program_name(self):
        assert parse("program widget\nend\n").name == "widget"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse("program p\nend\nx = 1\n")

    def test_statements_before_declarations_not_allowed(self):
        # Declarations must precede statements; a decl keyword later is an error.
        with pytest.raises(DslSyntaxError):
            parse("program p\n  integer i\n  i = 1\n  real x\nend\n")
