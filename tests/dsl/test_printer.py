"""Printer tests: output re-parses to a structurally equal AST."""

import pytest

from repro.dsl.parser import parse
from repro.dsl.printer import expr_to_source, stmt_to_source, to_source

ROUND_TRIP_SOURCES = [
    "program p\n  integer i, n\n  real a(10)\n  do i = 1, n\n    a(i) = a(i) + 1.0\n  end do\nend\n",
    "program p\n  real x\n  x = 1.0 + 2.0 * 3.0\nend\n",
    "program p\n  real x\n  x = (1.0 + 2.0) * 3.0\nend\n",
    "program p\n  real x\n  x = 2.0 ** 3.0 ** 2.0\nend\n",
    "program p\n  real x\n  x = (2.0 ** 3.0) ** 2.0\nend\n",
    "program p\n  real x\n  x = -x ** 2.0\nend\n",
    "program p\n  real x\n  x = (-x) ** 2.0\nend\n",
    "program p\n  real x\n  x = 1.0 - (2.0 - 3.0)\nend\n",
    "program p\n  integer i\n  real x\n  if (i == 1 and not i > 2) then\n    x = 1.0\n  else\n    x = 2.0\n  end if\nend\n",
    "program p\n  integer i\n  do while (i > 0)\n    i = i - 1\n  end do\nend\n",
    "program p\n  integer i, n\n  real a(5)\n  do i = 1, n, 2\n    a(mod(i, 5) + 1) = abs(a(i))\n  end do\nend\n",
    "program p\n  real x\n  x = min(max(x, 0.0), 1.0)\nend\n",
]


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_round_trip(source):
    program = parse(source)
    printed = to_source(program)
    assert parse(printed) == program


def test_second_print_is_stable():
    program = parse(ROUND_TRIP_SOURCES[0])
    once = to_source(program)
    twice = to_source(parse(once))
    assert once == twice


def test_precedence_parentheses_emitted_only_when_needed():
    program = parse("program p\n  real x\n  x = (1.0 + 2.0) * 3.0\nend\n")
    out = to_source(program)
    assert "(1.0 + 2.0) * 3.0" in out
    program = parse("program p\n  real x\n  x = 1.0 + 2.0 * 3.0\nend\n")
    out = to_source(program)
    assert "(" not in out.splitlines()[2]


def test_expr_to_source_simple():
    program = parse("program p\n  real x\n  x = 1.0 + x\nend\n")
    assert expr_to_source(program.body[0].expr) == "1.0 + x"


def test_stmt_to_source_if():
    program = parse(
        "program p\n  real x\n  if (x > 0.0) then\n    x = 1.0\n  end if\nend\n"
    )
    text = stmt_to_source(program.body[0])
    assert text.startswith("if (x > 0.0) then")
    assert text.endswith("end if")


def test_declarations_printed():
    src = "program p\n  integer n\n  real a(7)\nend\n"
    out = to_source(parse(src))
    assert "integer n" in out
    assert "real a(7)" in out
