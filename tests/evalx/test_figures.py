"""Figure-series builders: shapes the paper's plots must exhibit."""

import pytest

from repro.evalx.figures import (
    failure_cost_series,
    ideal_series,
    loop_figure,
    marking_overhead_series,
    pd_vs_lpd_comparison,
    procwise_qualification,
    schedule_reuse_series,
    speedup_series,
)
from repro.machine.costmodel import CostModel
from repro.runtime.orchestrator import Strategy
from repro.workloads.bdna import build_bdna

MODEL = CostModel(name="fig", num_procs=8)
PROCS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def bdna_figure():
    return loop_figure(build_bdna(n=80), procs=PROCS, model=MODEL)


class TestLoopFigure:
    def test_series_present(self, bdna_figure):
        assert {"speculative", "inspector", "ideal"} <= set(bdna_figure)

    def test_speedup_grows_with_procs(self, bdna_figure):
        for series in bdna_figure.values():
            speedups = series.speedups()
            assert speedups[-1] > speedups[0]

    def test_ideal_dominates_strategies(self, bdna_figure):
        ideal = bdna_figure["ideal"].speedups()
        for key in ("speculative", "inspector"):
            for measured, bound in zip(bdna_figure[key].speedups(), ideal):
                assert measured <= bound + 1e-9

    def test_track_has_no_inspector_series(self):
        from repro.workloads.track import build_track

        figure = loop_figure(build_track(n=100), procs=(1, 2), model=MODEL)
        assert "inspector" not in figure


class TestFailureCost:
    def test_zero_fraction_passes_rest_fail(self):
        points = failure_cost_series(fractions=(0.0, 0.2), n=120, model=MODEL)
        assert points[0].passed
        assert not points[1].passed

    def test_failed_speculation_bounded(self):
        points = failure_cost_series(fractions=(0.2,), n=200, model=MODEL)
        assert 1.0 < points[0].slowdown_vs_serial < 3.0


class TestPdVsLpd:
    def test_dead_reads_separate_the_tests(self):
        (point,) = pd_vs_lpd_comparison(live_fractions=(0.0,), model=MODEL)
        assert point.lpd_passed
        assert not point.pd_passed

    def test_live_reads_fail_both(self):
        (point,) = pd_vs_lpd_comparison(live_fractions=(1.0,), model=MODEL)
        assert not point.lpd_passed
        assert not point.pd_passed


class TestProcwise:
    def test_qualification_depends_on_blocking(self):
        points = procwise_qualification(procs=(2, 4, 8), n=240, model=MODEL)
        for point in points:
            assert not point.iteration_wise_passed
            # 240 divides evenly by 2/4/8 into even blocks: pairs stay
            # together and the processor-wise test qualifies the loop.
            assert point.processor_wise_passed
            assert point.processor_wise_speedup > 0.5

    def test_misaligned_blocks_fail_processor_wise(self):
        points = procwise_qualification(procs=(7,), n=240, model=MODEL)
        # 240 / 7 gives odd block sizes: some pair straddles a boundary.
        assert not points[0].processor_wise_passed


class TestMarkingOverhead:
    def test_overhead_grows_with_mark_cost(self):
        points = marking_overhead_series(mark_costs=(0.0, 8.0), procs=8, model=MODEL)
        assert points[1].overhead_factor > points[0].overhead_factor
        assert points[0].overhead_factor == pytest.approx(1.0)

    def test_speedup_falls_with_mark_cost(self):
        points = marking_overhead_series(mark_costs=(0.0, 16.0), procs=8, model=MODEL)
        assert points[1].speedup_at_p < points[0].speedup_at_p


class TestScheduleReuse:
    def test_reuse_cuts_per_invocation_time(self):
        without, with_cache = schedule_reuse_series(invocations=4, model=MODEL)
        assert not any(p.reused for p in without)
        assert all(p.reused for p in with_cache[1:])
        assert with_cache[1].time < without[1].time


class TestSpeedupSeries:
    def test_include_setup_lowers_speedup(self):
        workload = build_bdna(n=60)
        plain = speedup_series(
            workload, Strategy.SPECULATIVE, procs=(4,), model=MODEL
        )
        charged = speedup_series(
            workload, Strategy.SPECULATIVE, procs=(4,), model=MODEL,
            include_setup=True,
        )
        assert charged.speedups()[0] <= plain.speedups()[0]

    def test_labels(self):
        workload = build_bdna(n=40)
        series = speedup_series(workload, Strategy.SPECULATIVE, procs=(2,), model=MODEL)
        assert "BDNA" in series.label
        assert "speculative" in series.label

    def test_ideal_series_near_linear_at_low_p(self):
        series = ideal_series(build_bdna(n=120), procs=(1, 2), model=MODEL)
        s1, s2 = series.speedups()
        assert s2 > 1.5 * s1


class TestLiftCorpusSeries:
    def test_selected_names_only(self):
        from repro.evalx.figures import lift_corpus_series

        points = lift_corpus_series(names=("histogram", "first_negative"))
        by_name = {p.name: p for p in points}
        assert set(by_name) == {"histogram", "first_negative"}

        lifted = by_name["histogram"]
        assert lifted.lifted and lifted.passed and lifted.parity
        assert set(lifted.transforms) == {"privatization", "reduction"}

        rejected = by_name["first_negative"]
        assert not rejected.lifted
        assert rejected.reason == "break-unsupported"
        assert rejected.parity is None
