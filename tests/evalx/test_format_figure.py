"""format_figure rendering tests."""

from repro.evalx.render import format_figure
from repro.machine.stats import SpeedupPoint, SpeedupSeries


def make_series(label, pairs):
    series = SpeedupSeries(label=label)
    for procs, speedup in pairs:
        series.add(SpeedupPoint(procs=procs, speedup=speedup, time=1.0))
    return series


def test_rows_are_processor_counts():
    figure = {
        "a": make_series("a", [(1, 1.0), (2, 1.9)]),
        "b": make_series("b", [(1, 1.0), (2, 1.5)]),
    }
    text = format_figure(figure, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[1].split()[:3] == ["procs", "a", "b"]
    assert lines[3].split()[0] == "1"
    assert lines[4].split()[0] == "2"


def test_short_series_padded_with_dash():
    figure = {
        "long": make_series("long", [(1, 1.0), (2, 2.0)]),
        "short": make_series("short", [(1, 1.0)]),
    }
    text = format_figure(figure)
    assert "-" in text.splitlines()[-1]
