"""Text-table renderer tests."""

from repro.evalx.render import format_table


def test_alignment_and_header():
    text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "long-name" in lines[3]
    # Columns align: 'value' header column starts at the same offset.
    assert lines[0].index("value") == lines[2].index("1")


def test_floats_formatted():
    text = format_table(["x"], [[1.23456]])
    assert "1.23" in text
    assert "1.2345" not in text


def test_bools_rendered_yes_no():
    text = format_table(["ok"], [[True], [False]])
    assert "yes" in text
    assert "no" in text


def test_title_prepended():
    text = format_table(["a"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


class TestAsciiChart:
    def _figure(self):
        from repro.machine.stats import SpeedupPoint, SpeedupSeries

        series = SpeedupSeries(label="s")
        ideal = SpeedupSeries(label="ideal")
        for p, s in ((1, 1.0), (2, 1.8), (4, 3.1)):
            series.add(SpeedupPoint(procs=p, speedup=s, time=1.0 / s))
            ideal.add(SpeedupPoint(procs=p, speedup=float(p), time=1.0 / p))
        return {"measured": series, "ideal": ideal}

    def test_chart_has_axes_and_legend(self):
        from repro.evalx.render import ascii_chart

        text = ascii_chart(self._figure(), title="demo")
        assert text.splitlines()[0] == "demo"
        assert "+---" in text
        assert "* measured" in text
        assert "o ideal" in text

    def test_chart_marks_every_series(self):
        from repro.evalx.render import ascii_chart

        text = ascii_chart(self._figure())
        assert "*" in text
        assert "o" in text

    def test_x_axis_lists_proc_counts(self):
        from repro.evalx.render import ascii_chart

        text = ascii_chart(self._figure())
        axis = text.splitlines()[-2]
        for p in ("1", "2", "4"):
            assert p in axis
