"""Table I and Table II builders (reduced-size versions for speed)."""

import pytest

from repro.evalx.table1 import build_table1, render_table1
from repro.evalx.table2 import build_table2, render_table2
from repro.machine.costmodel import CostModel


@pytest.fixture(scope="module")
def table1_rows():
    from repro.workloads.bdna import build_bdna
    from repro.workloads.track import build_track

    loops = {
        "TRACK_NLFILT_do300": lambda: build_track(n=120),
        "BDNA_ACTFOR_do240": lambda: build_bdna(n=80),
    }
    return build_table1(
        loops,
        model8=CostModel(name="m8", num_procs=8),
        model14=CostModel(name="m14", num_procs=14),
    )


class TestTable1:
    def test_rows_cover_requested_loops(self, table1_rows):
        assert [r.loop for r in table1_rows] == [
            "TRACK_NLFILT_do300", "BDNA_ACTFOR_do240",
        ]

    def test_all_tests_pass(self, table1_rows):
        assert all(r.test_passed for r in table1_rows)

    def test_track_has_no_inspector_numbers(self, table1_rows):
        track = table1_rows[0]
        assert not track.inspector_ok
        assert track.speedup_insp_8 is None

    def test_bdna_inspector_present(self, table1_rows):
        bdna = table1_rows[1]
        assert bdna.inspector_ok
        assert bdna.speedup_insp_8 is not None

    def test_speedups_below_ideal(self, table1_rows):
        for row in table1_rows:
            assert row.speedup_spec_8 <= row.ideal_8 + 1e-9
            assert row.speedup_spec_14 <= row.ideal_14 + 1e-9

    def test_more_procs_helps(self, table1_rows):
        for row in table1_rows:
            assert row.speedup_spec_14 > row.speedup_spec_8 * 0.9

    def test_render_contains_all_rows(self, table1_rows):
        text = render_table1(table1_rows)
        assert "TRACK_NLFILT_do300" in text
        assert "n/a" in text  # TRACK's inspector cells


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self):
        return build_table2(n=80, num_chains=8, model=CostModel(num_procs=8))

    def test_all_methods_present(self, table2):
        from repro.baselines.methods import ALL_METHODS

        methods = {r.method for r in table2.empirical}
        assert set(ALL_METHODS) <= methods
        assert "Saltz/Mirchandaney (DOACROSS)" in methods

    def test_applicable_methods_have_valid_depths(self, table2):
        for row in table2.empirical:
            if row.applicable and row.depth is not None:
                assert row.depth >= row.optimal_depth

    def test_doacross_pipelined_no_depth(self, table2):
        row = next(
            r for r in table2.empirical if "DOACROSS" in r.method
        )
        assert row.applicable
        assert row.depth is None
        assert row.time is not None and row.time > 0

    def test_minimal_methods_reach_optimal(self, table2):
        by_name = {r.method: r for r in table2.empirical}
        assert by_name["Midkiff/Padua"].depth == by_name["Midkiff/Padua"].optimal_depth

    def test_zhu_yew_serializes_on_shared_read(self, table2):
        by_name = {r.method: r for r in table2.empirical}
        assert by_name["Zhu/Yew"].depth > by_name["Midkiff/Padua"].depth

    def test_lrpd_falls_back_to_serial(self, table2):
        assert table2.lrpd_time > table2.serial_time

    def test_render_has_both_halves(self, table2):
        text = render_table2(table2)
        assert "qualitative" in text
        assert "empirical" in text
        assert "this work" in text
