"""Lifted-vs-native parity: the frontend's semantic contract.

Every corpus loop, lifted and run through the full LRPD machinery with
``engine="auto"`` on a single-processor model (serial FP association),
must leave bit-identical arrays — and exactly-equal returned scalars —
to running the original Python function on identical inputs.  That
includes the loops the LRPD test rightly fails (their serial-fallback
environment is what gets compared), the strip-mined tier and the
DOACROSS recovery tier.
"""

import numpy as np
import pytest

from repro.machine import CostModel
from repro.runtime import LoopRunner, RunConfig, Strategy
from repro.workloads.pycorpus import (
    CORPUS,
    corpus_names,
    lift_corpus_loop,
    run_native,
)

PARITY1 = CostModel(name="parity1", num_procs=1)


def _assert_parity(loop, report):
    arrays, scalars = run_native(loop)
    for array in loop.check_arrays:
        assert (
            report.env.arrays[array].tobytes() == arrays[array].tobytes()
        ), f"{loop.name}/{array} diverged from native Python"
    for scalar in loop.returns:
        got = report.env.scalars[f"{scalar}_out"]
        assert got == scalars[scalar], (
            f"{loop.name}/{scalar}: lifted {got!r} != native {scalars[scalar]!r}"
        )


def _run(loop, strategy, **config):
    program = lift_corpus_loop(loop).require()
    runner = LoopRunner(program, lift_corpus_loop(loop).inputs)
    return runner.run(
        strategy, RunConfig(model=PARITY1, engine="auto", **config)
    )


@pytest.mark.parametrize("name", corpus_names(liftable=True))
def test_speculative_parity(name):
    loop = CORPUS[name]
    report = _run(loop, Strategy.SPECULATIVE)
    if loop.expect_pass is not None:
        assert report.passed is loop.expect_pass
    _assert_parity(loop, report)


def test_failing_loop_serial_fallback_is_exact():
    loop = CORPUS["cumsum"]
    report = _run(loop, Strategy.SPECULATIVE)
    assert report.passed is False  # flow dependence caught, serial re-run
    _assert_parity(loop, report)


# Strip-mining merges each strip's reduction partial into the live
# array at the strip boundary, which reassociates FP sums whose
# contributions span strips — so the stripped tier is parity-tested on
# loops without floating-point reductions (copies, privatization,
# integer counts, and the failing loop's per-strip serial fallback).
@pytest.mark.parametrize("name", ["gather", "threshold_count", "cumsum"])
def test_stripped_parity(name):
    loop = CORPUS[name]
    report = _run(loop, Strategy.STRIPPED, strip_size=16)
    _assert_parity(loop, report)


def test_doacross_recovery_parity():
    loop = CORPUS["decay_chain"]
    report = _run(loop, Strategy.DOACROSS_RECOVERY)
    _assert_parity(loop, report)


def test_catalog_serves_corpus_workloads():
    from repro.service.catalog import build_workload, workload_names

    names = workload_names()
    for name in corpus_names(liftable=True):
        assert f"corpus/{name}" in names
    workload = build_workload("corpus/histogram")
    report = LoopRunner(workload.program(), workload.inputs).run(
        Strategy.SPECULATIVE, RunConfig(model=PARITY1, engine="auto")
    )
    assert report.passed
    arrays, _scalars = run_native(CORPUS["histogram"])
    for array in CORPUS["histogram"].check_arrays:
        np.testing.assert_array_equal(report.env.arrays[array], arrays[array])
