"""Python-frontend lifting unit tests.

Each supported construct class lifts to the expected IR shape; each
unsupported construct rejects with its stable named reason (never an
exception).  The functions under test live in this module so
``inspect.getsource`` works on the callables.
"""

import numpy as np
import pytest

from repro.dsl import parse, to_source
from repro.dsl.ast_nodes import ArrayDecl, Do, ScalarDecl
from repro.frontend import get_frontend


@pytest.fixture(scope="module")
def python():
    return get_frontend("python")


def _inputs(**named):
    return dict(named)


def saxpy(x, y, c, n):
    for i in range(n):
        y[i] = c * x[i] + y[i]


def gather(dst, src, idx, n):
    for i in range(n):
        dst[i] = src[idx[i]]


def masked_scale(x, y, n):
    for i in range(n):
        if x[i] > 0.0:
            y[i] = 2.0 * x[i]


def norm(x, n):
    s = 0.0
    for i in range(n):
        t = x[i] * x[i]
        s = s + t
    return s


def window(x, y, n, w):
    for i in range(n - w):
        acc = 0.0
        for j in range(w):
            acc = acc + x[i + j]
        y[i] = acc


class TestSupportedConstructs:
    def test_plain_loop_lifts_and_prints(self, python):
        n = 8
        result = python.lift(
            saxpy,
            inputs=_inputs(x=np.ones(n), y=np.ones(n), c=2.0, n=n),
        )
        assert result, result.decision.explain()
        program = result.require()
        # The rendering round-trips and the program is a marked doall
        # candidate: one outer Do over the shifted 1..n range.
        assert parse(to_source(program)) == program
        outer = [s for s in program.body if isinstance(s, Do)]
        assert len(outer) == 1

    def test_subscripted_subscript(self, python):
        n = 8
        result = python.lift(
            gather,
            inputs=_inputs(
                dst=np.zeros(n),
                src=np.ones(n),
                idx=np.zeros(n, dtype=np.int64),
                n=n,
            ),
        )
        assert result, result.decision.explain()
        # The subscripted subscript survives into the printed IR.
        assert "idx(i)" in result.source.replace(" ", "")

    def test_data_dependent_if(self, python):
        n = 8
        result = python.lift(
            masked_scale, inputs=_inputs(x=np.ones(n), y=np.zeros(n), n=n)
        )
        assert result, result.decision.explain()
        assert "if (" in result.source

    def test_scalar_temporary_and_reduction_return(self, python):
        n = 8
        result = python.lift(norm, inputs=_inputs(x=np.ones(n), n=n))
        assert result, result.decision.explain()
        program = result.require()
        # The returned scalar is mirrored into a live-out ``s_out``.
        assert result.returns == ("s",)
        decls = {d.name for d in program.decls if isinstance(d, ScalarDecl)}
        assert {"s", "s_out", "t"} <= decls

    def test_inner_loop(self, python):
        n, w = 12, 3
        result = python.lift(
            window, inputs=_inputs(x=np.ones(n), y=np.zeros(n), n=n, w=w)
        )
        assert result, result.decision.explain()
        outer = next(s for s in result.require().body if isinstance(s, Do))
        assert any(isinstance(s, Do) for s in outer.body)

    def test_only_parameter_bindings_flow_through(self, python):
        n = 8
        result = python.lift(
            norm, inputs=_inputs(x=np.ones(n), n=n, unused="ignored")
        )
        assert result
        assert set(result.inputs) == {"x", "n"}

    def test_arrays_sized_and_typed_from_values(self, python):
        n = 6
        result = python.lift(norm, inputs=_inputs(x=np.ones(n), n=n))
        decl = next(
            d for d in result.require().decls
            if isinstance(d, ArrayDecl) and d.name == "x"
        )
        assert decl.size == n
        assert decl.kind == "real"


class TestNamedRejections:
    def _reason(self, python, fn, **inputs):
        result = python.lift(fn, inputs=inputs)
        assert not result
        assert result.program is None
        return result.decision.reason

    def test_break(self, python):
        def first(x, n):
            j = -1
            for i in range(n):
                if x[i] < 0.0:
                    j = i
                    break
            return j

        assert self._reason(python, first, x=np.ones(4), n=4) == "break-unsupported"

    def test_non_range_iterator(self, python):
        def total(x):
            s = 0.0
            for v in x:
                s = s + v
            return s

        assert self._reason(python, total, x=np.ones(4)) == "iterator-not-range"

    def test_multidim_array(self, python):
        def rows(a, out, n):
            for i in range(n):
                out[i] = a[i][0]

        assert (
            self._reason(
                python, rows, a=np.ones((4, 4)), out=np.zeros(4), n=4
            )
            == "multidim-array"
        )

    def test_unbound_parameter(self, python):
        assert self._reason(python, saxpy, x=np.ones(4)) == "missing-input"

    def test_unsupported_call(self, python):
        def rounder(x, n):
            for i in range(n):
                x[i] = round(x[i])

        assert self._reason(python, rounder, x=np.ones(4), n=4) == "unsupported-call"

    def test_bare_statement(self, python):
        def printer(x, n):
            for i in range(n):
                print(x[i])

        assert (
            self._reason(python, printer, x=np.ones(4), n=4)
            == "unsupported-statement"
        )

    def test_syntax_error_text(self, python):
        result = python.lift("def f(:\n  pass\n")
        assert result.decision.reason == "python-syntax-error"

    def test_not_a_function(self, python):
        assert python.lift(42).decision.reason == "not-a-function"
        assert python.lift("x = 1\n").decision.reason == "not-a-function"

    def test_source_text_with_named_function(self, python):
        text = (
            "def other(x, n):\n"
            "    for i in range(n):\n"
            "        x[i] = 0.0\n"
            "\n"
            "def wanted(x, n):\n"
            "    for i in range(n):\n"
            "        x[i] = 1.0\n"
        )
        result = python.lift(text, name="wanted", inputs=_inputs(x=np.ones(4), n=4))
        assert result, result.decision.explain()
        missing = python.lift(text, name="absent", inputs=_inputs(x=np.ones(4), n=4))
        assert missing.decision.reason == "not-a-function"

    def test_reasons_are_stable_kebab_case(self, python):
        import re

        shape = re.compile(r"^[a-z][a-z0-9]*(?:-[a-z0-9]+)*$")

        def slicer(x, n):
            for i in range(n):
                x[i:] = 0.0

        def whiler(x, n):
            for i in range(n):
                while x[i] > 1.0:
                    x[i] = x[i] / 2.0

        for fn in (slicer, whiler):
            result = python.lift(fn, inputs=_inputs(x=np.ones(4), n=4))
            assert not result
            assert shape.match(result.decision.reason), result.decision.reason
