"""Frontend registry tests (mirrors the engine-registry contract)."""

import pytest

from repro.dsl.ast_nodes import Program
from repro.errors import LiftError, UnknownFrontendError
from repro.frontend import (
    DEFAULT_FRONTEND,
    Frontend,
    FrontendRegistry,
    LiftDecision,
    LiftResult,
    frontend_names,
    get_frontend,
    registry,
)


class TestModuleRegistry:
    def test_both_frontends_registered(self):
        assert frontend_names() == ["dsl", "python"]

    def test_default_frontend_is_dsl(self):
        assert DEFAULT_FRONTEND == "dsl"
        assert get_frontend(DEFAULT_FRONTEND).name == "dsl"

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(UnknownFrontendError, match="dsl, python"):
            get_frontend("fortran2008")

    def test_every_frontend_carries_summary_and_suffixes(self):
        for frontend in registry.all():
            assert frontend.summary
            assert all(s.startswith(".") for s in frontend.suffixes)


class TestForPath:
    def test_python_claims_py(self):
        assert registry.for_path("examples/corpus/histogram.py").name == "python"

    def test_dsl_claims_fortran_suffixes(self):
        for path in ("loop.f", "loop.f77", "loop.dsl", "LOOP.F"):
            assert registry.for_path(path).name == "dsl"

    def test_unclaimed_suffix_falls_back_to_default(self):
        assert registry.for_path("notes.txt").name == DEFAULT_FRONTEND


class _Null(Frontend):
    name = "null"
    summary = "rejects everything"

    def lift(self, source, *, name=None, inputs=None):
        return LiftResult(
            frontend=self.name,
            decision=LiftDecision(False, "null-frontend", "always rejects"),
        )


class TestRegistryInstance:
    def test_duplicate_registration_rejected(self):
        fresh = FrontendRegistry()
        fresh.register(_Null())
        with pytest.raises(ValueError, match="already registered"):
            fresh.register(_Null())

    def test_nameless_frontend_rejected(self):
        class Nameless(_Null):
            name = ""

        with pytest.raises(ValueError, match="non-empty name"):
            FrontendRegistry().register(Nameless())


class TestLiftResult:
    def test_require_raises_lift_error_on_rejection(self):
        result = _Null().lift("anything")
        assert not result
        with pytest.raises(LiftError, match="null-frontend"):
            result.require()

    def test_decision_explain_formats(self):
        assert LiftDecision(True).explain() == "ok"
        assert (
            LiftDecision(False, "break-unsupported").explain()
            == "rejected (break-unsupported)"
        )
        assert "line 3" in LiftDecision(False, "x", "line 3").explain()


class TestDslFrontend:
    SOURCE = (
        "program demo\n  integer i, n\n  real a(8)\n"
        "  do i = 1, n\n    a(i) = 1.0\n  end do\nend\n"
    )

    def test_lifts_text_to_program(self):
        result = get_frontend("dsl").lift(self.SOURCE)
        assert result
        assert isinstance(result.require(), Program)
        assert result.source  # printable rendering travels along

    def test_syntax_error_is_a_named_rejection(self):
        result = get_frontend("dsl").lift("program p\n  do od\nend\n")
        assert not result
        assert result.decision.reason == "dsl-syntax-error"

    def test_non_text_is_a_named_rejection(self):
        result = get_frontend("dsl").lift(42)
        assert result.decision.reason == "source-not-text"
