"""End-to-end integration: source text → compiled plan → all strategies.

Walks the complete pipeline exactly the way a user would, on a program
combining every feature at once: setup statements, an inner loop,
privatizable work arrays, an array reduction through a temporary, a
scalar reduction, input-dependent control flow and live-out state.
"""

import numpy as np
import pytest

from repro import (
    Granularity,
    LoopRunner,
    RunConfig,
    Strategy,
    TestMode,
    fx80,
    fx2800,
    parse,
    to_source,
)

SOURCE = """
program everything
  integer i, j, n, m
  integer idx(24), cnt(24)
  real grid(48), acc(16), wk(6), src(24)
  real s, t, total
  n = 24
  do i = 1, n
    do j = 1, cnt(i)
      wk(j) = src(i) * real(j)
    end do
    s = 0.0
    do j = 1, cnt(i)
      s = s + wk(j)
    end do
    if (src(i) > 0.0) then
      t = acc(mod(idx(i), 16) + 1) + s
    else
      t = acc(mod(idx(i), 16) + 1) - s * 0.5
    end if
    acc(mod(idx(i), 16) + 1) = t
    grid(idx(i)) = s * 2.0
    total = total + s
  end do
  total = total * 1.0
end
"""


def make_inputs(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "idx": rng.permutation(24) + 1,
        "cnt": rng.integers(1, 7, 24),
        "src": rng.normal(size=24),
        "acc": rng.normal(scale=0.1, size=16),
        "total": 5.0,
    }


@pytest.fixture(scope="module")
def runner():
    return LoopRunner(parse(SOURCE), make_inputs())


class TestPipeline:
    def test_source_round_trips(self):
        program = parse(SOURCE)
        assert parse(to_source(program)) == program

    def test_plan_finds_all_features(self, runner):
        plan = runner.plan
        assert "grid" in plan.tested_arrays
        assert "acc" in plan.reduction_arrays
        assert plan.scalar_reductions == {"total": "+"}
        assert "total" in plan.live_out_scalars
        assert not plan.statically_parallel

    def test_speculative_passes_and_matches(self, runner):
        serial = runner.serial_run(fx80())
        report = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
        assert report.passed
        np.testing.assert_allclose(report.env.arrays["grid"], serial.env.arrays["grid"])
        np.testing.assert_allclose(report.env.arrays["acc"], serial.env.arrays["acc"])
        assert report.env.scalars["total"] == pytest.approx(serial.env.scalars["total"])

    def test_inspector_agrees(self, runner):
        serial = runner.serial_run(fx80())
        report = runner.run(Strategy.INSPECTOR, RunConfig(model=fx80()))
        assert report.passed
        np.testing.assert_allclose(report.env.arrays["acc"], serial.env.arrays["acc"])

    def test_fx2800_faster_than_fx80(self, runner):
        small = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
        large = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx2800()))
        assert large.speedup > small.speedup

    def test_pd_mode_conservative_but_correct(self, runner):
        serial = runner.serial_run(fx80())
        report = runner.run(
            Strategy.SPECULATIVE, RunConfig(model=fx80(), test_mode=TestMode.PD)
        )
        np.testing.assert_allclose(report.env.arrays["grid"], serial.env.arrays["grid"])

    def test_processor_wise_correct(self, runner):
        serial = runner.serial_run(fx80())
        report = runner.run(
            Strategy.SPECULATIVE,
            RunConfig(model=fx80(), granularity=Granularity.PROCESSOR),
        )
        np.testing.assert_allclose(report.env.arrays["acc"], serial.env.arrays["acc"])

    def test_different_seeds_all_consistent(self):
        for seed in (1, 2, 3):
            runner = LoopRunner(parse(SOURCE), make_inputs(seed))
            serial = runner.serial_run(fx80())
            report = runner.run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
            np.testing.assert_allclose(
                report.env.arrays["grid"], serial.env.arrays["grid"]
            )
            np.testing.assert_allclose(
                report.env.arrays["acc"], serial.env.arrays["acc"]
            )
