"""Documentation integrity: the README's code must actually run."""

import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_readme_quickstart_snippet_runs():
    readme = (REPO / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
    assert blocks, "README lost its quickstart snippet"
    snippet = blocks[0]
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "speedup" in result.stdout


def test_readme_engine_table_matches_registry():
    """The README engine table is the registry's own rendering, verbatim.

    ``repro.runtime.engines.render_engine_table`` generates the table
    from the registered engines' ``summary``/``guarantee`` strings, so
    registering a new engine (or editing a description) without
    refreshing the README fails here.
    """
    sys.path.insert(0, str(REPO / "src"))
    try:
        from repro.runtime.engines import render_engine_table
    finally:
        sys.path.pop(0)
    readme = (REPO / "README.md").read_text()
    assert render_engine_table() in readme


def test_readme_mentions_every_artifact_bench():
    readme = (REPO / "README.md").read_text()
    for bench in (REPO / "benchmarks").glob("bench_*.py"):
        short = bench.name
        # Per-loop figure benches are referenced via a brace glob.
        if re.match(r"bench_fig_(track|bdna|mdg|adm|ocean|spice|dyfesm)\.py", short):
            continue
        assert short in readme, f"README does not mention {short}"


def test_design_experiment_index_covers_benches():
    design = (REPO / "DESIGN.md").read_text()
    for bench in (REPO / "benchmarks").glob("bench_*.py"):
        if bench.name == "bench_engine_speed.py":
            continue  # infrastructure bench, not a paper artifact
        assert bench.name in design, f"DESIGN.md index misses {bench.name}"


def test_readme_lift_snippet_runs():
    """The python-frontend quickstart block runs on top of the first
    block (it reuses its ``np``/``rng`` bindings, as in the README)."""
    readme = (REPO / "README.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
    assert len(blocks) >= 2, "README lost its frontend quickstart snippet"
    snippet = blocks[0] + "\n" + blocks[1]
    # From a file, not ``-c``: the python frontend reads the kernel's
    # source via inspect.getsource, which needs a real file behind it.
    import tempfile

    with tempfile.NamedTemporaryFile(
        "w", suffix=".py", delete=False
    ) as handle:
        handle.write(snippet)
    result = subprocess.run(
        [sys.executable, handle.name],
        capture_output=True, text=True, timeout=300,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.count("speedup") >= 2
