"""Closure-compiled engine: unit tests + equivalence with the walker."""

import numpy as np
import pytest

from repro.dsl.parser import parse
from repro.errors import InterpError
from repro.interp.compiled import compile_program
from repro.interp.costs import CostCounter
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter, find_target_loop
from repro.machine.costmodel import CostModel
from repro.runtime.serial import run_serial


def run_both(source, inputs):
    program_a = parse(source)
    env_a = Environment(program_a, inputs)
    walker = Interpreter(program_a, env_a, value_based=False)
    walker.run()

    program_b = parse(source)
    env_b = Environment(program_b, inputs)
    cost_b = compile_program(program_b).run(env_b)
    return env_a, walker.cost, env_b, cost_b


def assert_equivalent(source, inputs):
    env_a, cost_a, env_b, cost_b = run_both(source, inputs)
    assert env_a.scalars == env_b.scalars
    for name in env_a.arrays:
        np.testing.assert_array_equal(env_a.arrays[name], env_b.arrays[name])
    assert cost_a.total() == cost_b.total()


class TestEquivalence:
    def test_arithmetic_program(self):
        assert_equivalent(
            "program p\n  integer i, n\n  real a(10), s\n  s = 0.5\n"
            "  do i = 1, n\n    a(i) = s * real(i) ** 2 + 1.0 / real(i)\n"
            "    s = s + a(i)\n  end do\nend\n",
            {"n": 10},
        )

    def test_control_flow(self):
        assert_equivalent(
            "program p\n  integer i, n\n  real a(10), x\n"
            "  do i = 1, n\n    if (mod(i, 2) == 0 and i > 3) then\n"
            "      a(i) = 1.0\n    else if (i == 1 or i == 7) then\n"
            "      a(i) = 2.0\n    else\n      a(i) = 3.0\n    end if\n"
            "  end do\nend\n",
            {"n": 10},
        )

    def test_while_and_indirection(self):
        assert_equivalent(
            "program p\n  integer i, k\n  integer nxt(6)\n  real y(6)\n"
            "  k = 1\n  i = 0\n  do while (k > 0)\n    y(k) = y(k) + 1.0\n"
            "    k = nxt(k)\n    i = i + 1\n  end do\nend\n",
            {"nxt": np.array([3, 0, 5, 0, 2, 0])},
        )

    def test_short_circuit_counting_matches(self):
        # The RHS of 'and' must not be evaluated (or counted) when the
        # LHS is false — both engines must agree on the counts.
        assert_equivalent(
            "program p\n  integer i, n\n  real a(8), x\n"
            "  do i = 1, n\n    if (i > 4 and a(i) == 0.0) then\n"
            "      x = x + 1.0\n    end if\n  end do\nend\n",
            {"n": 8},
        )

    def test_iteration_costs_match_walker(self):
        source = (
            "program p\n  integer i, n\n  real a(8)\n"
            "  do i = 1, n\n    a(i) = a(i) * 2.0 + 1.0\n  end do\nend\n"
        )
        walk = run_serial(parse(source), {"n": 8}, CostModel(), engine="walk")
        fast = run_serial(parse(source), {"n": 8}, CostModel(), engine="compiled")
        assert walk.loop_iteration_costs == fast.loop_iteration_costs
        assert walk.loop_time == fast.loop_time
        assert walk.setup_time == fast.setup_time


class TestErrors:
    def test_out_of_bounds(self):
        program = parse("program p\n  real a(3)\n  a(5) = 1.0\nend\n")
        with pytest.raises(InterpError):
            compile_program(program).run(Environment(program, {}))

    def test_zero_step(self):
        program = parse(
            "program p\n  integer i\n  do i = 1, 3, 0\n    i = i\n  end do\nend\n"
        )
        with pytest.raises(InterpError):
            compile_program(program).run(Environment(program, {}))

    def test_division_by_zero(self):
        program = parse("program p\n  real x\n  x = 1.0 / 0.0\nend\n")
        with pytest.raises(InterpError):
            compile_program(program).run(Environment(program, {}))

    def test_run_loop_requires_compiled_loop(self):
        program = parse(
            "program p\n  integer i\n  do i = 1, 3\n    i = i\n  end do\nend\n"
        )
        other = parse(
            "program p\n  integer i\n  do i = 1, 3\n    i = i\n  end do\nend\n"
        )
        compiled = compile_program(program)
        env = Environment(program, {})
        with pytest.raises(InterpError):
            compiled.run_loop(find_target_loop(other), env, CostCounter(), [1])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_serial(
                parse("program p\n  integer i\n  do i = 1, 2\n    i = i\n  end do\nend\n"),
                {}, CostModel(), engine="turbo",
            )


class TestRunStatements:
    def test_partial_execution(self):
        program = parse(
            "program p\n  integer n\n  real x\n  n = 5\n  x = 2.0\nend\n"
        )
        compiled = compile_program(program)
        env = Environment(program, {})
        compiled.run_statements(program.body[:1], env, CostCounter())
        assert env.scalars["n"] == 5
        assert env.scalars["x"] == 0.0

    def test_foreign_statement_rejected(self):
        program = parse("program p\n  integer n\n  n = 5\nend\n")
        other = parse("program p\n  integer n\n  n = 7\nend\n")
        compiled = compile_program(program)
        env = Environment(program, {})
        with pytest.raises(InterpError):
            compiled.run_statements(other.body, env, CostCounter())
