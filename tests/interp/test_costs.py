"""CostCounter / IterationCost tests."""

import pytest

from repro.interp.costs import CostCounter, IterationCost


class TestIterationCost:
    def test_total_ops(self):
        cost = IterationCost(flops=2, mem_reads=1, mem_writes=1, marks=3)
        assert cost.total_ops() == 7

    def test_addition(self):
        a = IterationCost(flops=1, branches=2)
        b = IterationCost(flops=3, intrinsics=1)
        combined = a + b
        assert combined.flops == 4
        assert combined.branches == 2
        assert combined.intrinsics == 1

    def test_without_marks(self):
        cost = IterationCost(flops=5, marks=7)
        stripped = cost.without_marks()
        assert stripped.marks == 0
        assert stripped.flops == 5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            IterationCost().flops = 1


class TestCostCounter:
    def test_iteration_bracketing_captures_delta(self):
        counter = CostCounter()
        counter.flops += 10
        counter.start_iteration()
        counter.flops += 3
        counter.mem_reads += 2
        delta = counter.end_iteration()
        assert delta.flops == 3
        assert delta.mem_reads == 2
        assert counter.iteration_costs == [delta]

    def test_multiple_iterations(self):
        counter = CostCounter()
        for increment in (1, 2, 3):
            counter.start_iteration()
            counter.flops += increment
            counter.end_iteration()
        assert [c.flops for c in counter.iteration_costs] == [1, 2, 3]

    def test_end_without_start_raises(self):
        with pytest.raises(RuntimeError):
            CostCounter().end_iteration()

    def test_total_snapshot(self):
        counter = CostCounter()
        counter.marks += 4
        counter.branches += 1
        total = counter.total()
        assert total.marks == 4
        assert total.branches == 1
