"""Environment tests."""

import numpy as np
import pytest

from repro.dsl.parser import parse
from repro.errors import InterpError
from repro.interp.env import Environment

PROGRAM = parse(
    "program p\n  integer n, idx(4)\n  real x, a(5)\nend\n"
)


def make_env(**inputs):
    return Environment(PROGRAM, inputs)


class TestInitialization:
    def test_defaults_are_zero(self):
        env = make_env()
        assert env.scalars["n"] == 0
        assert env.scalars["x"] == 0.0
        assert env.arrays["a"].tolist() == [0.0] * 5

    def test_integer_array_dtype(self):
        env = make_env()
        assert env.arrays["idx"].dtype == np.int64

    def test_inputs_copy_not_alias(self):
        data = np.ones(5)
        env = make_env(a=data)
        data[0] = 99.0
        assert env.arrays["a"][0] == 1.0

    def test_scalar_input_kind_conversion(self):
        env = make_env(n=3.0, x=2)
        assert env.scalars["n"] == 3
        assert isinstance(env.scalars["n"], int)
        assert env.scalars["x"] == 2.0
        assert isinstance(env.scalars["x"], float)

    def test_wrong_shape_input_rejected(self):
        with pytest.raises(InterpError):
            make_env(a=np.ones(6))

    def test_undeclared_input_rejected(self):
        with pytest.raises(InterpError):
            make_env(ghost=1)


class TestAccess:
    def test_one_based_load_store(self):
        env = make_env()
        env.store("a", 1, 7.5)
        env.store("a", 5, 2.5)
        assert env.load("a", 1) == 7.5
        assert env.load("a", 5) == 2.5

    @pytest.mark.parametrize("index", [0, 6, -1])
    def test_out_of_bounds_rejected(self, index):
        env = make_env()
        with pytest.raises(InterpError):
            env.load("a", index)

    def test_integer_array_store_truncates(self):
        env = make_env()
        env.store("idx", 1, 2.9)
        assert env.load("idx", 1) == 2

    def test_load_returns_python_types(self):
        env = make_env()
        env.store("a", 1, 1.5)
        env.store("idx", 1, 3)
        assert type(env.load("a", 1)) is float
        assert type(env.load("idx", 1)) is int

    def test_integer_scalar_assignment_truncates(self):
        env = make_env()
        env.set_scalar("n", 4.7)
        assert env.scalars["n"] == 4

    def test_undeclared_scalar_raises(self):
        env = make_env()
        with pytest.raises(InterpError):
            env.get_scalar("ghost")
        with pytest.raises(InterpError):
            env.set_scalar("ghost", 1)


class TestSnapshots:
    def test_snapshot_restore_arrays(self):
        env = make_env()
        env.store("a", 1, 1.0)
        snap = env.snapshot_arrays(["a"])
        env.store("a", 1, 2.0)
        env.restore_arrays(snap)
        assert env.load("a", 1) == 1.0

    def test_snapshot_is_deep(self):
        env = make_env()
        snap = env.snapshot_arrays(["a"])
        env.store("a", 1, 9.0)
        assert snap["a"][0] == 0.0

    def test_scalar_snapshot_restore(self):
        env = make_env(n=5)
        snap = env.snapshot_scalars()
        env.set_scalar("n", 9)
        env.restore_scalars(snap)
        assert env.scalars["n"] == 5

    def test_copy_is_independent(self):
        env = make_env(n=1)
        clone = env.copy()
        clone.store("a", 1, 3.0)
        clone.set_scalar("n", 2)
        assert env.load("a", 1) == 0.0
        assert env.scalars["n"] == 1

    def test_fork_scalars_shares_arrays(self):
        env = make_env()
        fork = env.fork_scalars()
        fork.store("a", 1, 3.0)
        assert env.load("a", 1) == 3.0
        fork.set_scalar("n", 7)
        assert env.scalars["n"] == 0
