"""Access-observer plumbing tests."""

from repro.interp.events import (
    READ,
    REDUX,
    WRITE,
    Access,
    NullObserver,
    TeeObserver,
    TraceRecorder,
)


class TestTraceRecorder:
    def test_records_kinds_and_iterations(self):
        recorder = TraceRecorder()
        recorder.iteration = 3
        recorder.on_read("a", 1)
        recorder.on_write("a", 2)
        recorder.on_redux("f", 5, "+")
        kinds = [access.kind for access in recorder.accesses]
        assert kinds == [READ, WRITE, REDUX]
        assert all(access.iteration == 3 for access in recorder.accesses)
        assert recorder.accesses[2].op == "+"

    def test_by_iteration_grouping(self):
        recorder = TraceRecorder()
        recorder.iteration = 0
        recorder.on_read("a", 1)
        recorder.iteration = 2
        recorder.on_write("a", 1)
        grouped = recorder.by_iteration()
        assert set(grouped) == {0, 2}
        assert grouped[0][0].kind == READ

    def test_access_records_are_frozen(self):
        access = Access(READ, "a", 1, 0)
        try:
            access.index = 2
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestTee:
    def test_forwards_to_all(self):
        first, second = TraceRecorder(), TraceRecorder()
        tee = TeeObserver(first, second)
        tee.on_read("a", 1)
        tee.on_write("a", 2)
        tee.on_redux("a", 3, "max")
        assert len(first.accesses) == len(second.accesses) == 3


class TestNull:
    def test_null_observer_accepts_everything(self):
        observer = NullObserver()
        observer.on_read("a", 1)
        observer.on_write("a", 1)
        observer.on_redux("a", 1, "*")
