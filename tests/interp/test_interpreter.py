"""Interpreter semantics tests."""

import math

import numpy as np
import pytest

from repro.dsl.parser import parse
from repro.errors import InterpError
from repro.interp.env import Environment
from repro.interp.interpreter import (
    Interpreter,
    find_target_loop,
    split_at_loop,
)


def run(source, **inputs):
    program = parse(source)
    env = Environment(program, inputs)
    Interpreter(program, env, value_based=False).run()
    return env


def eval_scalar(expr, decls="integer i, j\n  real x, y", **inputs):
    env = run(f"program t\n  {decls}\n  real result\n  result = {expr}\nend\n", **inputs)
    return env.scalars["result"]


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        assert eval_scalar("7 / 2") == 3.0
        assert eval_scalar("-7 / 2") == -3.0
        assert eval_scalar("7 / -2") == -3.0

    def test_real_division(self):
        assert eval_scalar("7.0 / 2.0") == pytest.approx(3.5)

    def test_mixed_arithmetic_promotes(self):
        assert eval_scalar("3 / 2.0") == pytest.approx(1.5)

    def test_power_integer(self):
        assert eval_scalar("2 ** 10") == 1024.0

    def test_power_negative_exponent_is_real(self):
        assert eval_scalar("2 ** (0 - 1)") == pytest.approx(0.5)

    def test_unary_minus(self):
        assert eval_scalar("-(3 + 4)") == -7.0

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError):
            eval_scalar("1 / 0")
        with pytest.raises(InterpError):
            eval_scalar("1.0 / 0.0")


class TestComparisonsAndLogic:
    def test_comparisons_yield_zero_one(self):
        assert eval_scalar("3 < 4") == 1.0
        assert eval_scalar("3 > 4") == 0.0
        assert eval_scalar("3 /= 4") == 1.0
        assert eval_scalar("3 == 3") == 1.0

    def test_and_or_not(self):
        assert eval_scalar("1 < 2 and 2 < 3") == 1.0
        assert eval_scalar("1 > 2 or 2 < 3") == 1.0
        assert eval_scalar("not 1 < 2") == 0.0

    def test_short_circuit_and_skips_rhs(self):
        # The RHS would divide by zero if evaluated.
        assert eval_scalar("0 == 1 and 1 / 0 == 1") == 0.0

    def test_short_circuit_or_skips_rhs(self):
        assert eval_scalar("1 == 1 or 1 / 0 == 1") == 1.0


class TestIntrinsics:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("abs(-3.5)", 3.5),
            ("sqrt(16.0)", 4.0),
            ("exp(0.0)", 1.0),
            ("log(1.0)", 0.0),
            ("sin(0.0)", 0.0),
            ("cos(0.0)", 1.0),
            ("floor(2.7)", 2.0),
            ("floor(-2.3)", -3.0),
            ("int(2.9)", 2.0),
            ("int(-2.9)", -2.0),
            ("real(3)", 3.0),
            ("sign(5.0, -1.0)", -5.0),
            ("sign(-5.0, 1.0)", 5.0),
            ("mod(7, 3)", 1.0),
            ("mod(-7, 3)", -1.0),
            ("min(2.0, 3.0)", 2.0),
            ("max(2.0, 3.0)", 3.0),
        ],
    )
    def test_intrinsic_values(self, expr, expected):
        assert eval_scalar(expr) == pytest.approx(expected)

    def test_sqrt_negative_raises(self):
        with pytest.raises(InterpError):
            eval_scalar("sqrt(-1.0)")

    def test_log_nonpositive_raises(self):
        with pytest.raises(InterpError):
            eval_scalar("log(0.0)")

    def test_mod_real(self):
        assert eval_scalar("mod(7.5, 2.0)") == pytest.approx(math.fmod(7.5, 2.0))


class TestControlFlow:
    def test_do_loop_accumulates(self):
        env = run(
            "program p\n  integer i, n\n  real s\n  s = 0.0\n"
            "  do i = 1, n\n    s = s + real(i)\n  end do\nend\n",
            n=10,
        )
        assert env.scalars["s"] == 55.0

    def test_do_loop_zero_trips(self):
        env = run(
            "program p\n  integer i\n  real s\n  s = 1.0\n"
            "  do i = 5, 1\n    s = 2.0\n  end do\nend\n"
        )
        assert env.scalars["s"] == 1.0

    def test_do_loop_negative_step(self):
        env = run(
            "program p\n  integer i\n  real s\n  s = 0.0\n"
            "  do i = 5, 1, -2\n    s = s + real(i)\n  end do\nend\n"
        )
        assert env.scalars["s"] == 9.0  # 5 + 3 + 1

    def test_loop_variable_final_value(self):
        env = run(
            "program p\n  integer i\n  do i = 1, 3\n    i = i\n  end do\nend\n"
        )
        assert env.scalars["i"] == 4

    def test_zero_step_raises(self):
        with pytest.raises(InterpError):
            run("program p\n  integer i\n  do i = 1, 3, 0\n    i = i\n  end do\nend\n")

    def test_if_branches(self):
        src = (
            "program p\n  integer i\n  real x\n"
            "  if (i > 0) then\n    x = 1.0\n  else\n    x = 2.0\n  end if\nend\n"
        )
        assert run(src, i=1).scalars["x"] == 1.0
        assert run(src, i=-1).scalars["x"] == 2.0

    def test_while_loop(self):
        env = run(
            "program p\n  integer i\n  real s\n  i = 4\n  s = 0.0\n"
            "  do while (i > 0)\n    s = s + 1.0\n    i = i - 1\n  end do\nend\n"
        )
        assert env.scalars["s"] == 4.0

    def test_non_integral_subscript_raises(self):
        with pytest.raises(InterpError):
            run(
                "program p\n  real a(3), x\n  x = 1.5\n  a(x) = 1.0\nend\n"
            )


class TestArraysAndPrograms:
    def test_indirection_chain(self):
        env = run(
            "program p\n  integer i, n\n  integer idx(4)\n  real a(4), b(4)\n"
            "  do i = 1, n\n    b(idx(i)) = a(i) * 2.0\n  end do\nend\n",
            n=4, idx=np.array([4, 3, 2, 1]), a=np.array([1.0, 2.0, 3.0, 4.0]),
        )
        assert env.arrays["b"].tolist() == [8.0, 6.0, 4.0, 2.0]

    def test_find_target_loop_and_split(self):
        program = parse(
            "program p\n  integer i, n\n  real a(4)\n  n = 4\n"
            "  do i = 1, n\n    a(i) = 1.0\n  end do\n  n = 0\nend\n"
        )
        loop = find_target_loop(program)
        before, after = split_at_loop(program, loop)
        assert len(before) == 1
        assert len(after) == 1

    def test_find_target_loop_missing_raises(self):
        with pytest.raises(InterpError):
            find_target_loop(parse("program p\n  real x\n  x = 1.0\nend\n"))

    def test_eval_loop_bounds(self):
        program = parse(
            "program p\n  integer i, n\n  do i = 2, n, 3\n    i = i\n  end do\nend\n"
        )
        env = Environment(program, {"n": 11})
        interp = Interpreter(program, env)
        assert interp.eval_loop_bounds(find_target_loop(program)) == (2, 11, 3)


class TestCostAccounting:
    def test_iteration_costs_recorded(self):
        program = parse(
            "program p\n  integer i, n\n  real a(8)\n"
            "  do i = 1, n\n    a(i) = a(i) * 2.0 + 1.0\n  end do\nend\n"
        )
        env = Environment(program, {"n": 8})
        interp = Interpreter(program, env, value_based=False)
        loop = find_target_loop(program)
        for i in range(1, 9):
            interp.exec_iteration(loop, i)
        costs = interp.cost.iteration_costs
        assert len(costs) == 8
        assert all(c.flops == costs[0].flops for c in costs)
        assert costs[0].mem_reads == 1
        assert costs[0].mem_writes == 1
        assert costs[0].flops == 2

    def test_branch_counting(self):
        program = parse(
            "program p\n  integer i\n  real x\n"
            "  if (i > 0) then\n    x = 1.0\n  end if\nend\n"
        )
        env = Environment(program, {"i": 1})
        interp = Interpreter(program, env, value_based=False)
        interp.run()
        assert interp.cost.branches == 1
