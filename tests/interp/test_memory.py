"""DirectMemory tests."""

import pytest

from repro.dsl.parser import parse
from repro.errors import InterpError
from repro.interp.env import Environment
from repro.interp.memory import DirectMemory

PROGRAM = parse("program p\n  real a(4)\n  integer idx(4)\nend\n")


def test_load_store_roundtrip():
    env = Environment(PROGRAM, {})
    memory = DirectMemory(env)
    memory.store("a", 2, 3.5)
    assert memory.load("a", 2) == 3.5
    assert env.load("a", 2) == 3.5


def test_ref_id_is_ignored():
    env = Environment(PROGRAM, {})
    memory = DirectMemory(env)
    memory.store("a", 1, 1.0, ref_id=99)
    assert memory.load("a", 1, ref_id=3) == 1.0


def test_bounds_propagate():
    memory = DirectMemory(Environment(PROGRAM, {}))
    with pytest.raises(InterpError):
        memory.load("a", 9)


def test_kind_conversion_applies():
    env = Environment(PROGRAM, {})
    memory = DirectMemory(env)
    memory.store("idx", 1, 2.9)
    assert memory.load("idx", 1) == 2
