"""Value-based (taint) marking discipline tests.

These pin down the LPD improvement over the PD test: with
``value_based=True`` a read is reported only when its value reaches
shared state, an address, or a control decision.
"""

import numpy as np

from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.interp.events import TraceRecorder
from repro.interp.interpreter import Interpreter, find_target_loop


def marked_reads(source, inputs, *, value_based, tested=("a",)):
    program = parse(source)
    env = Environment(program, inputs)
    recorder = TraceRecorder()
    interp = Interpreter(
        program, env, observer=recorder, tested=set(tested), value_based=value_based
    )
    loop = find_target_loop(program)
    start, stop, step = interp.eval_loop_bounds(loop)
    value = start
    position = 0
    while value <= stop:
        recorder.iteration = position
        interp.exec_iteration(loop, value)
        value += step
        position += 1
    return [(a.array, a.index, a.iteration) for a in recorder.accesses if a.kind == "R"]


DEAD_READ_SOURCE = (
    "program p\n  integer i, n\n  real a(4), t\n"
    "  do i = 1, n\n    t = a(i) * 2.0\n  end do\nend\n"
)


def test_dead_read_not_marked_value_based():
    reads = marked_reads(DEAD_READ_SOURCE, {"n": 4}, value_based=True)
    assert reads == []


def test_dead_read_marked_reference_based():
    reads = marked_reads(DEAD_READ_SOURCE, {"n": 4}, value_based=False)
    assert len(reads) == 4


def test_read_marked_when_stored_to_array():
    source = (
        "program p\n  integer i, n\n  real a(4), b(4), t\n"
        "  do i = 1, n\n    t = a(i)\n    b(i) = t\n  end do\nend\n"
    )
    reads = marked_reads(source, {"n": 4}, value_based=True)
    assert len(reads) == 4


def test_read_marked_when_used_in_branch_condition():
    source = (
        "program p\n  integer i, n\n  real a(4), t, x\n"
        "  do i = 1, n\n    t = a(i)\n    if (t > 0.0) then\n      x = 1.0\n"
        "    end if\n  end do\nend\n"
    )
    reads = marked_reads(source, {"n": 4, "a": np.ones(4)}, value_based=True)
    assert len(reads) == 4


def test_read_marked_when_used_as_subscript():
    source = (
        "program p\n  integer i, n, k\n  integer a(4)\n  real b(4)\n"
        "  do i = 1, n\n    k = a(i)\n    b(k) = 1.0\n  end do\nend\n"
    )
    reads = marked_reads(
        source, {"n": 4, "a": np.array([1, 2, 3, 4])}, value_based=True
    )
    assert len(reads) == 4


def test_conditionally_used_read_marked_only_when_used():
    source = (
        "program p\n  integer i, n\n  integer gate(4)\n  real a(4), out(4), t\n"
        "  do i = 1, n\n    t = a(i)\n"
        "    if (gate(i) == 1) then\n      out(i) = t\n    end if\n  end do\nend\n"
    )
    gate = np.array([1, 0, 1, 0])
    reads = marked_reads(source, {"n": 4, "gate": gate}, value_based=True)
    assert sorted(index for _a, index, _it in reads) == [1, 3]


def test_taint_attributed_to_reading_iteration():
    source = (
        "program p\n  integer i, n\n  real a(4), b(4), t\n"
        "  do i = 1, n\n    t = a(i)\n    b(i) = t\n  end do\nend\n"
    )
    reads = marked_reads(source, {"n": 4}, value_based=True)
    assert [(idx, it) for _a, idx, it in reads] == [(1, 0), (2, 1), (3, 2), (4, 3)]


def test_taints_die_at_iteration_end():
    # The value read in iteration i is stored only in iteration i's scalar;
    # by the next iteration the scalar is overwritten, so exactly one read
    # is reported per used value, never duplicated.
    source = (
        "program p\n  integer i, n\n  real a(4), b(4), t\n"
        "  do i = 1, n\n    t = a(i)\n    b(i) = t + t\n  end do\nend\n"
    )
    reads = marked_reads(source, {"n": 4}, value_based=True)
    assert len(reads) == 4


def test_taint_through_arithmetic_chain():
    source = (
        "program p\n  integer i, n\n  real a(4), b(4), t, u, v\n"
        "  do i = 1, n\n    t = a(i)\n    u = t * 2.0\n    v = u + 1.0\n"
        "    b(i) = v\n  end do\nend\n"
    )
    reads = marked_reads(source, {"n": 4}, value_based=True)
    assert len(reads) == 4


def test_taint_cleared_by_overwriting_scalar():
    source = (
        "program p\n  integer i, n\n  real a(4), b(4), t\n"
        "  do i = 1, n\n    t = a(i)\n    t = 0.0\n    b(i) = t\n  end do\nend\n"
    )
    reads = marked_reads(source, {"n": 4}, value_based=True)
    assert reads == []


def test_flush_live_out_scalars():
    program = parse(
        "program p\n  integer i, n\n  real a(4), t\n"
        "  do i = 1, n\n    t = a(i)\n  end do\nend\n"
    )
    env = Environment(program, {"n": 4})
    recorder = TraceRecorder()
    interp = Interpreter(
        program, env, observer=recorder, tested={"a"}, value_based=True
    )
    loop = find_target_loop(program)
    for position, value in enumerate(range(1, 5)):
        recorder.iteration = position
        interp.exec_iteration(loop, value, flush_live_out=("t",))
    # t is declared live-out: each iteration's read must be reported.
    assert len([a for a in recorder.accesses if a.kind == "R"]) == 4
