"""Cost model tests."""


import pytest

from repro.errors import MachineConfigError
from repro.interp.costs import IterationCost
from repro.machine.costmodel import CostModel, fx80, fx2800


class TestIterationCycles:
    def test_weighted_sum(self):
        model = CostModel(
            flop=1.0, mem_access=2.0, scalar_op=0.5, intrinsic=8.0,
            branch=1.0, mark=4.0,
        )
        cost = IterationCost(
            flops=3, mem_reads=1, mem_writes=1, scalar_ops=4,
            intrinsics=1, branches=2, marks=5,
        )
        assert model.iteration_cycles(cost) == 3 + 4 + 2 + 8 + 2 + 20

    def test_empty_iteration_is_free(self):
        assert CostModel().iteration_cycles(IterationCost()) == 0.0


class TestPhases:
    def test_barrier_grows_with_procs(self):
        model = CostModel()
        assert model.barrier(8) > model.barrier(2)

    def test_parallel_sweep_scales_down_with_procs(self):
        model = CostModel()
        assert model.parallel_sweep(1000, 8, 1.0) < model.parallel_sweep(1000, 2, 1.0)

    def test_parallel_sweep_zero_elements_free(self):
        assert CostModel().parallel_sweep(0, 8, 1.0) == 0.0

    def test_analysis_time_includes_barrier(self):
        model = CostModel()
        assert model.analysis_time(100, 4) > model.barrier(4)


class TestMachines:
    def test_fx80_has_8_processors(self):
        assert fx80().num_procs == 8

    def test_fx2800_has_14_processors(self):
        assert fx2800().num_procs == 14

    def test_with_procs_changes_only_procs(self):
        base = fx80()
        altered = base.with_procs(4)
        assert altered.num_procs == 4
        assert altered.mem_access == base.mem_access
        assert altered.name == base.name

    def test_invalid_proc_count_rejected(self):
        with pytest.raises(MachineConfigError):
            CostModel(num_procs=0)

    def test_models_are_frozen(self):
        with pytest.raises(AttributeError):
            fx80().num_procs = 2
