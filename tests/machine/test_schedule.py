"""Scheduling policy tests."""

import pytest

from repro.errors import MachineConfigError
from repro.machine.schedule import ScheduleKind, assign_iterations, makespan


def flat(assignment):
    return sorted(i for chunk in assignment for i in chunk)


class TestBlock:
    def test_partition_complete_and_disjoint(self):
        assignment = assign_iterations(10, 3, ScheduleKind.BLOCK)
        assert flat(assignment) == list(range(10))

    def test_blocks_are_contiguous_and_balanced(self):
        assignment = assign_iterations(10, 3, ScheduleKind.BLOCK)
        assert assignment == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_more_procs_than_iterations(self):
        assignment = assign_iterations(2, 4, ScheduleKind.BLOCK)
        assert flat(assignment) == [0, 1]
        assert sum(1 for chunk in assignment if chunk) == 2

    def test_within_proc_order_ascending(self):
        for chunk in assign_iterations(17, 4, ScheduleKind.BLOCK):
            assert chunk == sorted(chunk)


class TestCyclic:
    def test_round_robin(self):
        assignment = assign_iterations(7, 3, ScheduleKind.CYCLIC)
        assert assignment == [[0, 3, 6], [1, 4], [2, 5]]

    def test_partition_complete(self):
        assert flat(assign_iterations(23, 5, ScheduleKind.CYCLIC)) == list(range(23))


class TestDynamic:
    def test_requires_costs(self):
        with pytest.raises(MachineConfigError):
            assign_iterations(5, 2, ScheduleKind.DYNAMIC)

    def test_partition_complete(self):
        costs = [1.0] * 9
        assignment = assign_iterations(9, 2, ScheduleKind.DYNAMIC, costs=costs)
        assert flat(assignment) == list(range(9))

    def test_balances_skewed_costs(self):
        # One huge iteration first: dynamic should give the rest to the
        # other processor.
        costs = [100.0] + [1.0] * 10
        assignment = assign_iterations(11, 2, ScheduleKind.DYNAMIC, costs=costs)
        span_dynamic = makespan(assignment, costs)
        block = assign_iterations(11, 2, ScheduleKind.BLOCK)
        span_block = makespan(block, costs)
        assert span_dynamic <= span_block

    def test_chunked_dispatch(self):
        costs = [1.0] * 8
        assignment = assign_iterations(8, 2, ScheduleKind.DYNAMIC, costs=costs, chunk=4)
        assert all(len(chunk) == 4 for chunk in assignment)


class TestMakespan:
    def test_max_of_loads(self):
        assignment = [[0, 1], [2]]
        costs = [1.0, 2.0, 5.0]
        assert makespan(assignment, costs) == 5.0

    def test_dispatch_charged_per_iteration(self):
        assignment = [[0, 1], [2]]
        costs = [1.0, 1.0, 1.0]
        assert makespan(assignment, costs, dispatch_per_iteration=0.5) == 3.0

    def test_never_below_max_cost(self):
        costs = [3.0, 1.0, 7.0, 2.0]
        for p in (1, 2, 3, 4):
            assignment = assign_iterations(4, p, ScheduleKind.BLOCK)
            assert makespan(assignment, costs) >= max(costs)

    def test_never_above_total(self):
        costs = [3.0, 1.0, 7.0, 2.0]
        for p in (1, 2, 4):
            assignment = assign_iterations(4, p, ScheduleKind.BLOCK)
            assert makespan(assignment, costs) <= sum(costs)

    def test_zero_procs_rejected(self):
        with pytest.raises(MachineConfigError):
            assign_iterations(4, 0, ScheduleKind.BLOCK)
