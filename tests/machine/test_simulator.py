"""Doall simulator tests."""

import pytest

from repro.interp.costs import IterationCost
from repro.machine.costmodel import CostModel
from repro.machine.simulator import DoallSimulator
from repro.machine.stats import TimeBreakdown


def sim(procs=4, **kw):
    return DoallSimulator(CostModel(num_procs=procs, **kw))


def costs(n, flops=10):
    return [IterationCost(flops=flops) for _ in range(n)]


class TestDoallTime:
    def test_serial_time_is_sum(self):
        simulator = sim()
        assert simulator.serial_time(costs(10)) == 100.0

    def test_parallel_body_shrinks_with_procs(self):
        work = costs(64)
        body2, _, _ = DoallSimulator(CostModel(num_procs=2)).doall_time(work)
        body8, _, _ = DoallSimulator(CostModel(num_procs=8)).doall_time(work)
        assert body8 < body2

    def test_body_bounded_by_serial(self):
        work = costs(13)
        body, _, _ = sim().doall_time(work)
        assert body <= sim().serial_time(work)
        assert body >= sim().serial_time(work) / 4

    def test_explicit_assignment_used(self):
        work = costs(4)
        lopsided = [[0, 1, 2, 3], [], [], []]
        body, _, _ = sim().doall_time(work, assignment=lopsided)
        assert body == 40.0

    def test_empty_loop(self):
        body, dispatch, barrier = sim().doall_time([])
        assert body == 0.0
        assert dispatch == 0.0
        assert barrier > 0.0


class TestPhaseTimes:
    def test_checkpoint_scales_with_elements(self):
        simulator = sim()
        assert simulator.checkpoint_time(1000) > simulator.checkpoint_time(10)

    def test_analysis_includes_log_term(self):
        simulator = sim()
        assert simulator.analysis_time(0) > 0.0  # the barrier at least

    def test_reduction_merge_zero_elements_free(self):
        assert sim().reduction_merge_time(0) == 0.0

    def test_reduction_merge_scales(self):
        simulator = sim()
        assert simulator.reduction_merge_time(1000) > simulator.reduction_merge_time(10)

    def test_private_init_per_proc_elements(self):
        simulator = sim()
        assert simulator.private_init_time(100) == pytest.approx(
            100 * simulator.model.private_init_per_element
        )


class TestTimeBreakdown:
    def test_total_sums_all_phases(self):
        breakdown = TimeBreakdown(body=10.0, barrier=2.0, analysis=3.0)
        assert breakdown.total() == 15.0

    def test_overhead_excludes_body(self):
        breakdown = TimeBreakdown(body=10.0, barrier=2.0, checkpoint=1.0)
        assert breakdown.overhead() == 3.0

    def test_merged_with(self):
        a = TimeBreakdown(body=1.0)
        b = TimeBreakdown(body=2.0, analysis=5.0)
        merged = a.merged_with(b)
        assert merged.body == 3.0
        assert merged.analysis == 5.0

    def test_nonzero_phases(self):
        breakdown = TimeBreakdown(body=1.0)
        assert breakdown.nonzero_phases() == {"body": 1.0}
