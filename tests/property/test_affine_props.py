"""Conservativeness of the static dependence tests (vs exact oracle)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affine import Affine
from repro.analysis.dependence import (
    banerjee_test,
    cross_iteration_solution_exists,
    gcd_test,
    may_cross_depend,
)

coef = st.integers(min_value=-6, max_value=6)
const = st.integers(min_value=-10, max_value=10)
bound = st.integers(min_value=1, max_value=30)


@settings(max_examples=300, deadline=None)
@given(ac=coef, a0=const, bc=coef, b0=const, n=bound)
def test_gcd_test_never_misses_a_solution(ac, a0, bc, b0, n):
    a, b = Affine(ac, a0), Affine(bc, b0)
    if cross_iteration_solution_exists(a, b, n):
        assert gcd_test(a, b)


@settings(max_examples=300, deadline=None)
@given(ac=coef, a0=const, bc=coef, b0=const, n=bound)
def test_banerjee_never_misses_a_solution(ac, a0, bc, b0, n):
    a, b = Affine(ac, a0), Affine(bc, b0)
    if cross_iteration_solution_exists(a, b, n):
        assert banerjee_test(a, b, n)


@settings(max_examples=300, deadline=None)
@given(ac=coef, a0=const, bc=coef, b0=const, n=bound)
def test_may_cross_depend_is_exact_for_small_bounds(ac, a0, bc, b0, n):
    a, b = Affine(ac, a0), Affine(bc, b0)
    assert may_cross_depend(a, b, n) == cross_iteration_solution_exists(a, b, n)


@settings(max_examples=200, deadline=None)
@given(ac=coef, a0=const, bc=coef, b0=const, n=bound)
def test_unknown_bound_is_conservative(ac, a0, bc, b0, n):
    a, b = Affine(ac, a0), Affine(bc, b0)
    if cross_iteration_solution_exists(a, b, n):
        assert may_cross_depend(a, b, None)
