"""Property: the closure-compiled engine ≡ the tree walker.

Random execution-safe programs (guarded arithmetic, in-range subscripts)
must produce identical final state AND identical operation counts under
both engines — the compiled fast path may not drift semantically.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.parser import parse
from repro.interp.compiled import compile_program
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter

N = 8
SIZE = 10

TEMPLATE = f"""
program randexec
  integer i, j, n
  integer idx({N}), gate({N})
  real a({SIZE}), b({SIZE}), x, y
  do i = 1, n
    x = a(idx(i)) * {{c1}} + real(i)
    if (gate(i) == 1 and x > {{c2}}) then
      b(idx(i)) = x - y
      y = y + {{c3}}
    else
      do j = 1, {{inner}}
        b(j) = b(j) * {{c4}} + x
      end do
    end if
    a(idx(i)) = min(max(x, -100.0), 100.0)
  end do
end
"""

constants = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)
indices = st.lists(st.integers(min_value=1, max_value=SIZE), min_size=N, max_size=N)
gates = st.lists(st.integers(min_value=0, max_value=1), min_size=N, max_size=N)


@settings(max_examples=100, deadline=None)
@given(
    c1=constants, c2=constants, c3=constants, c4=constants,
    inner=st.integers(min_value=0, max_value=4),
    idx=indices, gate=gates,
)
def test_engines_agree(c1, c2, c3, c4, inner, idx, gate):
    source = TEMPLATE.format(c1=repr(abs(c1)), c2=repr(abs(c2)),
                             c3=repr(abs(c3)), c4=repr(abs(c4)), inner=inner)
    inputs = {
        "n": N,
        "idx": np.array(idx),
        "gate": np.array(gate),
        "a": np.linspace(-1.0, 1.0, SIZE),
        "b": np.linspace(2.0, 3.0, SIZE),
        "y": 0.25,
    }

    program_a = parse(source)
    env_a = Environment(program_a, inputs)
    walker = Interpreter(program_a, env_a, value_based=False)
    walker.run()

    program_b = parse(source)
    env_b = Environment(program_b, inputs)
    cost_b = compile_program(program_b).run(env_b)

    assert env_a.scalars == env_b.scalars
    np.testing.assert_array_equal(env_a.arrays["a"], env_b.arrays["a"])
    np.testing.assert_array_equal(env_a.arrays["b"], env_b.arrays["b"])
    assert walker.cost.total() == cost_b.total()
