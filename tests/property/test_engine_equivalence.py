"""Property: every registered engine ≡ the tree walker.

Random execution-safe programs (guarded arithmetic, in-range subscripts)
must produce identical final state AND identical operation counts under
every serial-capable engine — the compiled fast path may not drift
semantically.  The same holds for the speculative engines: random
workloads with reductions, passing and failing speculations (including
eager aborts) must yield the same LRPD outcome, shadow counts, simulated
times and memory state for every registered engine (the vectorized
whole-block engine commits in bulk or falls back, the ``auto`` planner
delegates to its pick — all bit-identical by contract).

The engine lists are drawn from the registry, so a newly registered
engine joins these suites automatically.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.instrument import build_plan
from repro.dsl.parser import parse
from repro.interp.compiled import compile_program
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.machine.costmodel import fx80
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.runtime.engines import registry
from repro.runtime.serial import run_serial
from repro.runtime.speculative import run_speculative

#: every registered engine that runs without forking real worker
#: processes (a fork per hypothesis example is prohibitively slow; the
#: multiprocess backend has its own parity suite in
#: tests/runtime/test_parallel_backend.py and tests/property/
#: test_parallel_props.py).
IN_PROCESS_ENGINES = [
    engine.name
    for engine in registry.all()
    if not engine.caps.requires_workers
]

N = 8
SIZE = 10

TEMPLATE = f"""
program randexec
  integer i, j, n
  integer idx({N}), gate({N})
  real a({SIZE}), b({SIZE}), x, y
  do i = 1, n
    x = a(idx(i)) * {{c1}} + real(i)
    if (gate(i) == 1 and x > {{c2}}) then
      b(idx(i)) = x - y
      y = y + {{c3}}
    else
      do j = 1, {{inner}}
        b(j) = b(j) * {{c4}} + x
      end do
    end if
    a(idx(i)) = min(max(x, -100.0), 100.0)
  end do
end
"""

constants = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)
indices = st.lists(st.integers(min_value=1, max_value=SIZE), min_size=N, max_size=N)
gates = st.lists(st.integers(min_value=0, max_value=1), min_size=N, max_size=N)


@settings(max_examples=100, deadline=None)
@given(
    c1=constants, c2=constants, c3=constants, c4=constants,
    inner=st.integers(min_value=0, max_value=4),
    idx=indices, gate=gates,
)
def test_engines_agree(c1, c2, c3, c4, inner, idx, gate):
    source = TEMPLATE.format(c1=repr(abs(c1)), c2=repr(abs(c2)),
                             c3=repr(abs(c3)), c4=repr(abs(c4)), inner=inner)
    inputs = {
        "n": N,
        "idx": np.array(idx),
        "gate": np.array(gate),
        "a": np.linspace(-1.0, 1.0, SIZE),
        "b": np.linspace(2.0, 3.0, SIZE),
        "y": 0.25,
    }

    program_a = parse(source)
    env_a = Environment(program_a, inputs)
    walker = Interpreter(program_a, env_a, value_based=False)
    walker.run()

    program_b = parse(source)
    env_b = Environment(program_b, inputs)
    cost_b = compile_program(program_b).run(env_b)

    assert env_a.scalars == env_b.scalars
    np.testing.assert_array_equal(env_a.arrays["a"], env_b.arrays["a"])
    np.testing.assert_array_equal(env_a.arrays["b"], env_b.arrays["b"])
    assert walker.cost.total() == cost_b.total()

    # Every serial-capable engine in the registry agrees with the walker
    # on state, iteration costs and phase times.
    runs = {
        engine.name: run_serial(
            parse(source), inputs, fx80(), engine=engine.name
        )
        for engine in registry.all()
        if engine.caps.supports_serial
    }
    reference = runs["walk"]
    for name, other in runs.items():
        if name == "walk":
            continue
        assert reference.env.scalars == other.env.scalars
        np.testing.assert_array_equal(
            reference.env.arrays["a"], other.env.arrays["a"]
        )
        np.testing.assert_array_equal(
            reference.env.arrays["b"], other.env.arrays["b"]
        )
        assert reference.loop_iteration_costs == other.loop_iteration_costs
        assert reference.loop_time == other.loop_time
        assert reference.setup_time == other.setup_time
        assert reference.teardown_time == other.teardown_time


SPEC_N = 10
SPEC_SIZE = 12

SPEC_TEMPLATE = f"""
program randspec
  integer i, n
  integer w({SPEC_N}), r({SPEC_N}), ridx({SPEC_N})
  real a({SPEC_SIZE}), s({SPEC_SIZE}), v({SPEC_N}), x
  do i = 1, n
    x = a(r(i)) + v(i)
    a(w(i)) = x * 0.5
    s(ridx(i)) = s(ridx(i)) + x
  end do
end
"""

spec_indices = st.lists(
    st.integers(min_value=1, max_value=SPEC_SIZE),
    min_size=SPEC_N, max_size=SPEC_N,
)


@settings(max_examples=50, deadline=None)
@given(w=spec_indices, r=spec_indices, ridx=spec_indices, eager=st.booleans())
def test_speculative_engines_agree(w, r, ridx, eager):
    """Walker ≡ compiled ≡ vectorized on the full speculative protocol.

    The random w/r vectors produce passing runs (disjoint, privatizable)
    and failing ones (cross-iteration flow dependences) — with ``eager``
    the latter abort mid-doall, exercising the batched-marking engine's
    small-buffer replay path.  Every observable must match: LRPD result
    (per-array tw/tm/failed elements), simulated time breakdown, run
    stats (marks, iterations, aborted_after) and the post-loop memory.
    """
    source = SPEC_TEMPLATE
    inputs = {
        "n": SPEC_N,
        "w": np.array(w),
        "r": np.array(r),
        "ridx": np.array(ridx),
        "v": np.linspace(0.5, 1.5, SPEC_N),
        "a": np.linspace(-1.0, 1.0, SPEC_SIZE),
        "s": np.zeros(SPEC_SIZE),
        "x": 0.0,
    }

    outcomes = {}
    envs = {}
    for engine in IN_PROCESS_ENGINES:
        program = parse(source)
        plan = build_plan(program)
        env = Environment(program, inputs)
        sim = DoallSimulator(fx80().with_procs(4), ScheduleKind.BLOCK)
        outcomes[engine] = run_speculative(
            program, plan.loop, env, plan, sim, eager=eager, engine=engine
        )
        envs[engine] = env

    walk = outcomes["walk"]
    for engine in IN_PROCESS_ENGINES:
        if engine == "walk":
            continue
        other = outcomes[engine]
        assert walk.result == other.result
        assert walk.times == other.times
        assert walk.stats == other.stats
        assert walk.run.aborted == other.run.aborted
        assert walk.run.executed_iterations == other.run.executed_iterations
        assert walk.run.iteration_costs == other.run.iteration_costs
        assert envs["walk"].scalars == envs[engine].scalars
        for name in ("a", "s"):
            np.testing.assert_array_equal(
                envs["walk"].arrays[name], envs[engine].arrays[name]
            )
