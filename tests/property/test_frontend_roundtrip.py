"""Property: print → parse is the identity on every real program.

`test_parser_roundtrip` establishes the property on *random* programs;
this file pins it on the programs that actually matter — every servable
workload (paper loops, synthetic service traffic, lifted corpus loops)
and every corpus program as the python frontend emits it.  The printed
``source`` a :class:`~repro.workloads.base.Workload` stores is the wire
format of the serve protocol and the cache key of the profile store, so
a printer/parser drift here silently forks program identity.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.dsl import parse, to_source
from repro.service.catalog import WORKLOADS, build_workload, workload_names
from repro.workloads.pycorpus import CORPUS, corpus_names, lift_corpus_loop

ALL_WORKLOADS = workload_names()
LIFTED = corpus_names(liftable=True)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_every_workload_program_roundtrips(name):
    workload = build_workload(name)
    program = workload.program()
    assert parse(to_source(program)) == program


@pytest.mark.parametrize("name", LIFTED)
def test_every_lifted_corpus_program_roundtrips(name):
    result = lift_corpus_loop(CORPUS[name])
    program = result.require()
    # The lift result's stored source IS the canonical rendering: the
    # parse of it reproduces the lifted IR exactly.
    assert parse(result.source) == program
    assert parse(to_source(program)) == program


@settings(max_examples=60, deadline=None)
@given(name=st.sampled_from(ALL_WORKLOADS))
def test_printing_is_stable_on_real_programs(name):
    once = to_source(WORKLOADS[name]().program())
    assert to_source(parse(once)) == once
