"""Property: the multiprocess backend ≡ the compiled engine.

Random gather/scatter/reduction loops (the same shape as the engine-
equivalence template) must produce identical LRPD outcomes, simulated
times, stats, shadow counts and post-loop memory when executed on real
worker processes with shared-memory shadow sets and the cross-processor
merge.  Eagerly aborted runs are compared on the guaranteed surface
only — the verdict and the rolled-back, serially recomputed memory —
because workers abort at a local point, not the emulation's global
round-robin point.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.instrument import build_plan
from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.machine.costmodel import fx80
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.runtime.speculative import run_speculative

SPEC_N = 10
SPEC_SIZE = 12

SPEC_TEMPLATE = f"""
program randpar
  integer i, n
  integer w({SPEC_N}), r({SPEC_N}), ridx({SPEC_N})
  real a({SPEC_SIZE}), s({SPEC_SIZE}), v({SPEC_N}), x
  do i = 1, n
    x = a(r(i)) + v(i)
    a(w(i)) = x * 0.5
    s(ridx(i)) = s(ridx(i)) + x
  end do
end
"""

spec_indices = st.lists(
    st.integers(min_value=1, max_value=SPEC_SIZE),
    min_size=SPEC_N, max_size=SPEC_N,
)


@settings(max_examples=20, deadline=None)
@given(w=spec_indices, r=spec_indices, ridx=spec_indices, eager=st.booleans())
def test_parallel_backend_agrees_with_compiled(w, r, ridx, eager):
    inputs = {
        "n": SPEC_N,
        "w": np.array(w),
        "r": np.array(r),
        "ridx": np.array(ridx),
        "v": np.linspace(0.5, 1.5, SPEC_N),
        "a": np.linspace(-1.0, 1.0, SPEC_SIZE),
        "s": np.zeros(SPEC_SIZE),
        "x": 0.0,
    }

    outcomes = {}
    envs = {}
    for engine in ("compiled", "parallel"):
        program = parse(SPEC_TEMPLATE)
        plan = build_plan(program)
        env = Environment(program, inputs)
        sim = DoallSimulator(fx80().with_procs(4), ScheduleKind.BLOCK)
        outcomes[engine] = run_speculative(
            program, plan.loop, env, plan, sim,
            eager=eager, engine=engine, workers=2,
        )
        envs[engine] = env

    ref, par = outcomes["compiled"], outcomes["parallel"]
    aborted = ref.run.aborted or par.run.aborted
    assert ref.result.passed == par.result.passed
    assert envs["compiled"].scalars == envs["parallel"].scalars
    for name in ("a", "s"):
        np.testing.assert_array_equal(
            envs["compiled"].arrays[name], envs["parallel"].arrays[name]
        )
    if not aborted:
        assert ref.result == par.result
        assert ref.times == par.times
        assert ref.stats == par.stats
        assert ref.run.iteration_costs == par.run.iteration_costs
        for name, shadow in ref.run.marker.shadows.items():
            other = par.run.marker.shadows[name]
            assert shadow.tw == other.tw
            assert shadow.tm == other.tm
            np.testing.assert_array_equal(shadow.w, other.w)
            np.testing.assert_array_equal(shadow.r, other.r)
            np.testing.assert_array_equal(shadow.np_, other.np_)
            np.testing.assert_array_equal(shadow.nx, other.nx)


@settings(max_examples=10, deadline=None)
@given(w=spec_indices, r=spec_indices, ridx=spec_indices)
def test_vectorized_worker_backend_agrees_with_compiled(w, r, ridx):
    """The vectorized engine through real worker shards ≡ compiled.

    Each worker classifies and lowers its shard to the whole-block
    kernels (or falls back to the compiled per-iteration path inside the
    worker); either way the merged run must match the serial compiled
    engine bit for bit.
    """
    inputs = {
        "n": SPEC_N,
        "w": np.array(w),
        "r": np.array(r),
        "ridx": np.array(ridx),
        "v": np.linspace(0.5, 1.5, SPEC_N),
        "a": np.linspace(-1.0, 1.0, SPEC_SIZE),
        "s": np.zeros(SPEC_SIZE),
        "x": 0.0,
    }

    outcomes = {}
    envs = {}
    for engine in ("compiled", "vectorized"):
        program = parse(SPEC_TEMPLATE)
        plan = build_plan(program)
        env = Environment(program, inputs)
        sim = DoallSimulator(fx80().with_procs(4), ScheduleKind.BLOCK)
        outcomes[engine] = run_speculative(
            program, plan.loop, env, plan, sim,
            engine=engine, workers=2 if engine == "vectorized" else None,
        )
        envs[engine] = env

    ref, vec = outcomes["compiled"], outcomes["vectorized"]
    assert ref.result == vec.result
    assert ref.times == vec.times
    assert ref.stats == vec.stats
    assert ref.run.iteration_costs == vec.run.iteration_costs
    assert envs["compiled"].scalars == envs["vectorized"].scalars
    for name in ("a", "s"):
        np.testing.assert_array_equal(
            envs["compiled"].arrays[name], envs["vectorized"].arrays[name]
        )
