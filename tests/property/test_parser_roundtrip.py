"""Property: print → parse is the identity on random programs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Do,
    Expr,
    If,
    Num,
    Program,
    ScalarDecl,
    ArrayDecl,
    UnaryOp,
    Var,
    While,
)
from repro.dsl.parser import INTRINSICS, parse
from repro.dsl.printer import to_source

SCALARS = ("x", "y", "z")
INT_SCALARS = ("i", "j", "n")
ARRAYS = ("a", "b")

_numbers = st.one_of(
    st.integers(min_value=0, max_value=999).map(
        lambda v: Num(value=float(v), is_int=True)
    ),
    st.floats(
        min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
    ).map(lambda v: Num(value=v, is_int=False)),
)
_variables = st.sampled_from(SCALARS + INT_SCALARS).map(lambda n: Var(name=n))
_arith_ops = st.sampled_from(["+", "-", "*", "/", "**"])
_cmp_ops = st.sampled_from(["==", "/=", "<", "<=", ">", ">="])
_unary = st.sampled_from(["-", "not"])
_intrinsics = st.sampled_from(sorted(INTRINSICS))


def _expressions(depth: int) -> st.SearchStrategy[Expr]:
    if depth <= 0:
        return st.one_of(_numbers, _variables)
    sub = _expressions(depth - 1)
    return st.one_of(
        _numbers,
        _variables,
        st.builds(lambda n, e: ArrayRef(name=n, index=e), st.sampled_from(ARRAYS), sub),
        st.builds(lambda o, l, r: BinOp(op=o, left=l, right=r), _arith_ops, sub, sub),
        st.builds(lambda o, l, r: BinOp(op=o, left=l, right=r), _cmp_ops, sub, sub),
        st.builds(
            lambda o, l, r: BinOp(op=o, left=l, right=r),
            st.sampled_from(["and", "or"]), sub, sub,
        ),
        st.builds(lambda o, e: UnaryOp(op=o, operand=e), _unary, sub),
        st.builds(
            lambda f, args: Call(func=f, args=args[: INTRINSICS[f]]),
            _intrinsics,
            st.lists(sub, min_size=2, max_size=2),
        ),
    )


def _statements(depth: int) -> st.SearchStrategy:
    assign = st.one_of(
        st.builds(
            lambda n, e: Assign(target=Var(name=n), expr=e),
            st.sampled_from(SCALARS),
            _expressions(2),
        ),
        st.builds(
            lambda n, idx, e: Assign(target=ArrayRef(name=n, index=idx), expr=e),
            st.sampled_from(ARRAYS),
            _expressions(1),
            _expressions(2),
        ),
    )
    if depth <= 0:
        return assign
    sub = st.lists(_statements(depth - 1), min_size=1, max_size=3)
    return st.one_of(
        assign,
        st.builds(
            lambda c, t, e: If(cond=c, then_body=t, else_body=e),
            _expressions(1),
            sub,
            st.one_of(st.just([]), sub),
        ),
        st.builds(
            lambda v, a, b, body: Do(var=v, start=a, stop=b, body=body),
            st.sampled_from(INT_SCALARS),
            _expressions(1),
            _expressions(1),
            sub,
        ),
        st.builds(
            lambda c, body: While(cond=c, body=body),
            _expressions(1),
            sub,
        ),
    )


_programs = st.lists(_statements(2), min_size=1, max_size=5).map(
    lambda body: Program(
        name="randprog",
        decls=(
            [ScalarDecl(name=n, kind="real") for n in SCALARS]
            + [ScalarDecl(name=n, kind="integer") for n in INT_SCALARS]
            + [ArrayDecl(name=n, kind="real", size=10) for n in ARRAYS]
        ),
        body=body,
    )
)


@settings(max_examples=200, deadline=None)
@given(program=_programs)
def test_print_parse_identity(program):
    assert parse(to_source(program)) == program


@settings(max_examples=100, deadline=None)
@given(program=_programs)
def test_printing_is_stable(program):
    once = to_source(program)
    assert to_source(parse(once)) == once
