"""Scheduling and baseline-schedule properties."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.methods import ALL_METHODS
from repro.baselines.trace import extract_trace
from repro.dsl.parser import parse
from repro.errors import BaselineInapplicable
from repro.machine.schedule import ScheduleKind, assign_iterations, makespan

N_MAX = 40


@settings(max_examples=120, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=N_MAX),
    p=st.integers(min_value=1, max_value=9),
    kind=st.sampled_from([ScheduleKind.BLOCK, ScheduleKind.CYCLIC]),
)
def test_static_assignments_partition_iterations(n, p, kind):
    assignment = assign_iterations(n, p, kind)
    flat = [i for chunk in assignment for i in chunk]
    assert sorted(flat) == list(range(n))
    assert len(assignment) == p
    for chunk in assignment:
        assert chunk == sorted(chunk)  # per-proc serial order preserved


@settings(max_examples=100, deadline=None)
@given(
    costs=st.lists(
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        min_size=1, max_size=N_MAX,
    ),
    p=st.integers(min_value=1, max_value=8),
    chunk=st.integers(min_value=1, max_value=5),
)
def test_dynamic_assignment_partitions_and_bounds(costs, p, chunk):
    assignment = assign_iterations(
        len(costs), p, ScheduleKind.DYNAMIC, costs=costs, chunk=chunk
    )
    flat = [i for c in assignment for i in c]
    assert sorted(flat) == list(range(len(costs)))
    span = makespan(assignment, costs)
    assert span >= max(costs) - 1e-9
    assert span <= sum(costs) + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    costs=st.lists(
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        min_size=1, max_size=N_MAX,
    ),
    p=st.integers(min_value=1, max_value=8),
)
def test_makespan_between_avg_and_sum(costs, p):
    assignment = assign_iterations(len(costs), p, ScheduleKind.BLOCK)
    span = makespan(assignment, costs)
    assert span >= sum(costs) / p - 1e-9
    assert span <= sum(costs) + 1e-9


# -- baseline schedule validity over random gather/scatter traces -----------

TRACE_SOURCE = """
program randtrace
  integer i, n
  integer wloc(16), rloc(16)
  real a(12)
  do i = 1, n
    a(wloc(i)) = a(rloc(i)) + 1.0
  end do
end
"""

locs = st.lists(
    st.integers(min_value=1, max_value=12), min_size=16, max_size=16
)


@settings(max_examples=60, deadline=None)
@given(wloc=locs, rloc=locs)
def test_baseline_schedules_valid_on_random_traces(wloc, rloc):
    trace = extract_trace(
        parse(TRACE_SOURCE),
        {"n": 16, "wloc": np.array(wloc), "rloc": np.array(rloc)},
    )
    flow_preds = trace.flow_predecessors()
    for name, scheduler in ALL_METHODS.items():
        try:
            schedule = scheduler(trace)
        except BaselineInapplicable:
            continue
        stage_of = schedule.iteration_stage()
        assert sorted(stage_of) == list(range(16)), name
        for iteration, preds in enumerate(flow_preds):
            for pred in preds:
                assert stage_of[pred] < stage_of[iteration], name
        assert all(schedule.stages), f"{name}: empty stage"
