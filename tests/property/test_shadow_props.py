"""Property: the shadow analysis agrees with a reference model.

The reference model keeps, per element, the full ordered access list and
decides pass/fail from first principles:

* a *flow conflict* exists when some granule's exposed read (no earlier
  same-granule write) follows — in granule order — another granule's
  write;
* reduction validity: an element is a valid reduction iff it is touched
  only by reduction accesses with one operator.

The shadow implementation must reach exactly the same verdict from its
O(1)-per-mark state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lrpd import analyze_shadows
from repro.core.outcomes import TestMode
from repro.core.shadow import ShadowMarker

SIZE = 6
MAX_GRANULE = 5

#: one mark: (kind, element 1-based, granule); kind r/w/x
marks_strategy = st.lists(
    st.tuples(
        st.sampled_from(["r", "w", "x+", "x*"]),
        st.integers(min_value=1, max_value=SIZE),
        st.integers(min_value=0, max_value=MAX_GRANULE),
    ),
    min_size=0,
    max_size=24,
)


@dataclass
class _RefElement:
    accesses: list = field(default_factory=list)  # (granule, kind, op)

    def verdict(self) -> bool:
        """True = element passes the (directional, reduction-aware) test."""
        redux_ops = {op for _g, kind, op in self.accesses if kind == "x"}
        plain = [(g, kind) for g, kind, _op in self.accesses if kind != "x"]
        if redux_ops:
            if plain or len(redux_ops) > 1:
                return False
            return True
        # Exposed reads: not preceded (in the per-granule access sequence)
        # by a write of the same granule.
        writes_seen: set[int] = set()
        exposed: list[int] = []
        write_granules: list[int] = []
        for granule, kind in plain:
            if kind == "w":
                writes_seen.add(granule)
                write_granules.append(granule)
            else:
                if granule not in writes_seen:
                    exposed.append(granule)
        if not write_granules:
            return True
        return not any(r > w for r in exposed for w in write_granules)


def reference_passes(marks) -> bool:
    elements = [_RefElement() for _ in range(SIZE)]
    for kind, element, granule in marks:
        if kind == "r":
            elements[element - 1].accesses.append((granule, "r", None))
        elif kind == "w":
            elements[element - 1].accesses.append((granule, "w", None))
        else:
            elements[element - 1].accesses.append((granule, "x", kind[1]))
    return all(e.verdict() for e in elements)


def shadow_passes(marks) -> bool:
    marker = ShadowMarker({"a": SIZE})
    ordered = sorted(range(len(marks)), key=lambda i: marks[i][2])
    # Marks must be applied granule-by-granule in each granule's program
    # order (an iteration executes atomically); order across granules is
    # free, so sort by granule (stable) like the block executor would.
    for position in ordered:
        kind, element, granule = marks[position]
        marker.set_granule(granule)
        if kind == "r":
            marker.on_read("a", element)
        elif kind == "w":
            marker.on_write("a", element)
        else:
            marker.on_redux("a", element, kind[1])
    return analyze_shadows(marker, TestMode.LRPD).passed


@settings(max_examples=400, deadline=None)
@given(marks=marks_strategy)
def test_shadow_analysis_matches_reference_model(marks):
    assert shadow_passes(marks) == reference_passes(marks)


@settings(max_examples=200, deadline=None)
@given(marks=marks_strategy)
def test_tw_tm_invariants(marks):
    marker = ShadowMarker({"a": SIZE})
    for kind, element, granule in sorted(marks, key=lambda m: m[2]):
        marker.set_granule(granule)
        if kind == "r":
            marker.on_read("a", element)
        elif kind == "w":
            marker.on_write("a", element)
        else:
            marker.on_redux("a", element, kind[1])
    shadow = marker.shadows["a"]
    # tw counts (element, granule) pairs of *plain* writes; tm counts
    # distinct elements with the write bit set, which includes reduction
    # accesses (markredux sets A_w) — so tm is exactly the union below.
    write_pairs = {
        (element, granule) for kind, element, granule in marks if kind == "w"
    }
    redux_written = {
        element for kind, element, _g in marks if kind.startswith("x")
    }
    plain_written = {element for kind, element, _g in marks if kind == "w"}
    assert shadow.tw == len(write_pairs)
    assert shadow.tm == len(plain_written | redux_written)


@settings(max_examples=150, deadline=None)
@given(marks=marks_strategy)
def test_pd_mode_is_conservative(marks):
    """PD failing predicate dominates: PD pass => LRPD pass."""
    def run(mode):
        marker = ShadowMarker({"a": SIZE})
        for kind, element, granule in sorted(marks, key=lambda m: m[2]):
            marker.set_granule(granule)
            if kind == "r":
                marker.on_read("a", element)
            elif kind == "w":
                marker.on_write("a", element)
            else:
                marker.on_redux("a", element, kind[1])
        return analyze_shadows(marker, mode).passed

    if run(TestMode.PD):
        assert run(TestMode.LRPD)
