"""The central soundness property of the LRPD framework.

For *any* loop (random access patterns, random control flow, reductions,
collisions, any processor count and granularity): after the speculative
protocol completes, the program state equals the serial execution's state
— because either the test passed and the emulated doall (privatization,
reduction partials, dynamic last-value) was semantically equivalent, or
the test failed and the checkpoint rollback + serial re-execution
restored serial semantics.  Any marking or analysis unsoundness breaks
this equality.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.outcomes import TestMode
from repro.core.shadow import Granularity
from repro.machine.costmodel import CostModel
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy

N = 12
SIZE = 16

GATHER_SCATTER = f"""
program randloop
  integer i, n
  integer wloc({N}), rloc({N}), gate({N})
  real a({SIZE}), b({SIZE}), src({N}), t
  do i = 1, n
    t = a(rloc(i)) * 0.5 + src(i)
    if (gate(i) == 1) then
      a(wloc(i)) = t + 1.0
    else
      b(wloc(i)) = t * 2.0
    end if
  end do
end
"""

REDUCTION_MIX = f"""
program randredux
  integer i, n
  integer wloc({N}), rloc({N}), gate({N})
  real a({SIZE}), f({SIZE}), src({N}), s, t
  do i = 1, n
    t = src(i) * src(i)
    if (gate(i) == 1) then
      f(rloc(i)) = f(rloc(i)) + t
    else
      a(wloc(i)) = t
    end if
    s = s + src(i)
  end do
end
"""

RMW_PATTERN = f"""
program randrmw
  integer i, n
  integer wloc({N}), rloc({N})
  real a({SIZE}), src({N})
  do i = 1, n
    a(wloc(i)) = a(wloc(i)) * 0.5 + a(rloc(i)) + src(i)
  end do
end
"""

indices = st.lists(
    st.integers(min_value=1, max_value=SIZE), min_size=N, max_size=N
)
gates = st.lists(st.integers(min_value=0, max_value=1), min_size=N, max_size=N)
procs_st = st.integers(min_value=1, max_value=6)


def run_and_compare(source, inputs, config, check_arrays, check_scalars=()):
    runner = LoopRunner(source_to_program(source), inputs)
    serial = runner.serial_run(config.model)
    report = runner.run(Strategy.SPECULATIVE, config)
    for name in check_arrays:
        np.testing.assert_allclose(
            report.env.arrays[name],
            serial.env.arrays[name],
            err_msg=f"array {name} diverged (passed={report.passed})",
        )
    for name in check_scalars:
        assert abs(report.env.scalars[name] - serial.env.scalars[name]) < 1e-9
    return report


def source_to_program(source):
    from repro.dsl.parser import parse

    return parse(source)


@settings(max_examples=60, deadline=None)
@given(wloc=indices, rloc=indices, gate=gates, procs=procs_st)
def test_gather_scatter_always_matches_serial(wloc, rloc, gate, procs):
    inputs = {
        "n": N,
        "wloc": np.array(wloc),
        "rloc": np.array(rloc),
        "gate": np.array(gate),
        "src": np.linspace(0.1, 1.2, N),
        "a": np.linspace(-1.0, 1.0, SIZE),
        "b": np.zeros(SIZE),
    }
    config = RunConfig(model=CostModel(name="h", num_procs=procs))
    run_and_compare(GATHER_SCATTER, inputs, config, ("a", "b"))


@settings(max_examples=60, deadline=None)
@given(wloc=indices, rloc=indices, gate=gates, procs=procs_st)
def test_reduction_mix_always_matches_serial(wloc, rloc, gate, procs):
    inputs = {
        "n": N,
        "wloc": np.array(wloc),
        "rloc": np.array(rloc),
        "gate": np.array(gate),
        "src": np.linspace(0.2, 1.5, N),
        "a": np.zeros(SIZE),
        "f": np.linspace(1.0, 2.0, SIZE),
        "s": 3.0,
    }
    config = RunConfig(model=CostModel(name="h", num_procs=procs))
    run_and_compare(REDUCTION_MIX, inputs, config, ("a", "f"), ("s",))


@settings(max_examples=60, deadline=None)
@given(wloc=indices, rloc=indices, procs=procs_st)
def test_read_modify_write_always_matches_serial(wloc, rloc, procs):
    inputs = {
        "n": N,
        "wloc": np.array(wloc),
        "rloc": np.array(rloc),
        "src": np.linspace(0.3, 0.9, N),
        "a": np.linspace(1.0, 4.0, SIZE),
    }
    config = RunConfig(model=CostModel(name="h", num_procs=procs))
    run_and_compare(RMW_PATTERN, inputs, config, ("a",))


@settings(max_examples=40, deadline=None)
@given(wloc=indices, rloc=indices, procs=st.integers(min_value=1, max_value=4))
def test_processor_wise_granularity_sound(wloc, rloc, procs):
    inputs = {
        "n": N,
        "wloc": np.array(wloc),
        "rloc": np.array(rloc),
        "src": np.linspace(0.3, 0.9, N),
        "a": np.linspace(1.0, 4.0, SIZE),
    }
    config = RunConfig(
        model=CostModel(name="h", num_procs=procs),
        granularity=Granularity.PROCESSOR,
    )
    run_and_compare(RMW_PATTERN, inputs, config, ("a",))


@settings(max_examples=40, deadline=None)
@given(wloc=indices, rloc=indices, gate=gates)
def test_pd_pass_implies_lrpd_pass(wloc, rloc, gate):
    """The PD test is strictly more conservative than the LRPD test."""
    inputs = {
        "n": N,
        "wloc": np.array(wloc),
        "rloc": np.array(rloc),
        "gate": np.array(gate),
        "src": np.linspace(0.1, 1.2, N),
        "a": np.linspace(-1.0, 1.0, SIZE),
        "b": np.zeros(SIZE),
    }
    model = CostModel(name="h", num_procs=3)
    pd = run_and_compare(
        GATHER_SCATTER, dict(inputs), RunConfig(model=model, test_mode=TestMode.PD),
        ("a", "b"),
    )
    lrpd = run_and_compare(
        GATHER_SCATTER, dict(inputs), RunConfig(model=model), ("a", "b")
    )
    if pd.passed:
        assert lrpd.passed


@settings(max_examples=30, deadline=None)
@given(wloc=indices, rloc=indices)
def test_strict_paper_mode_pass_implies_default_pass(wloc, rloc):
    """Disabling dynamic last-value / direction only removes passes."""
    inputs = {
        "n": N,
        "wloc": np.array(wloc),
        "rloc": np.array(rloc),
        "src": np.linspace(0.3, 0.9, N),
        "a": np.linspace(1.0, 4.0, SIZE),
    }
    model = CostModel(name="h", num_procs=3)
    strict = run_and_compare(
        RMW_PATTERN, dict(inputs),
        RunConfig(model=model, dynamic_last_value=False, directional=False),
        ("a",),
    )
    default = run_and_compare(RMW_PATTERN, dict(inputs), RunConfig(model=model), ("a",))
    if strict.passed:
        assert default.passed
