"""Property: strip-mined speculation ≡ serial, and ≡ unstripped when legal.

Random gather/scatter loops with a reduction (the SPEC shape of the
engine-equivalence suite), random strip sizes (degenerate single-
iteration strips through one-strip-covers-everything), both execution
engines and eager failure detection on/off:

* the post-loop memory always matches the serial oracle — whether every
  strip passed, some rolled back, or eager detection aborted mid-strip;
* both engines produce the same stripped execution, observable for
  observable (verdict, per-strip records, simulated times, stats,
  memory);
* on inputs where the unstripped test passes, the aggregate stripped
  verdict and the whole-loop tw/tm totals are identical to the
  unstripped analysis (the :class:`StripAggregator` contract).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.instrument import build_plan
from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.machine.costmodel import fx80
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.runtime.speculative import (
    FixedStripSizer,
    SpeculationPipeline,
    run_speculative,
)

N = 10
SIZE = 12

TEMPLATE = f"""
program randstrip
  integer i, n
  integer w({N}), r({N}), ridx({N})
  real a({SIZE}), s({SIZE}), v({N}), x
  do i = 1, n
    x = a(r(i)) + v(i)
    a(w(i)) = x * 0.5
    s(ridx(i)) = s(ridx(i)) + x
  end do
end
"""

indices = st.lists(
    st.integers(min_value=1, max_value=SIZE), min_size=N, max_size=N
)


def _inputs(w, r, ridx):
    return {
        "n": N,
        "w": np.array(w),
        "r": np.array(r),
        "ridx": np.array(ridx),
        "v": np.linspace(0.5, 1.5, N),
        "a": np.linspace(-1.0, 1.0, SIZE),
        "s": np.zeros(SIZE),
        "x": 0.0,
    }


def _serial_oracle(inputs):
    program = parse(TEMPLATE)
    env = Environment(program, inputs)
    Interpreter(program, env, value_based=False).run()
    return env


def _run_stripped(inputs, strip_size, engine, eager):
    program = parse(TEMPLATE)
    plan = build_plan(program)
    env = Environment(program, inputs)
    sim = DoallSimulator(fx80().with_procs(4), ScheduleKind.BLOCK)
    outcome = SpeculationPipeline(
        program, plan.loop, env, plan, sim,
        sizer=FixedStripSizer(strip_size), eager=eager, engine=engine,
    ).run()
    return outcome, env


@settings(max_examples=40, deadline=None)
@given(
    w=indices, r=indices, ridx=indices,
    strip_size=st.integers(min_value=1, max_value=N + 2),
    eager=st.booleans(),
)
def test_stripped_matches_serial_and_unstripped(w, r, ridx, strip_size, eager):
    inputs = _inputs(w, r, ridx)
    oracle = _serial_oracle(inputs)

    outcomes = {}
    for engine in ("walk", "compiled"):
        outcome, env = _run_stripped(inputs, strip_size, engine, eager)
        outcomes[engine] = (outcome, env)
        # Memory always equals the serial reference: passed strips
        # committed in order, failed strips rolled back + re-ran serially
        # (allclose: per-strip reduction merges legally reassociate).
        np.testing.assert_allclose(
            env.arrays["a"], oracle.arrays["a"], err_msg=f"{engine}: a"
        )
        np.testing.assert_allclose(
            env.arrays["s"], oracle.arrays["s"], err_msg=f"{engine}: s"
        )

    walk, fast = outcomes["walk"], outcomes["compiled"]
    assert walk[0].result == fast[0].result
    assert walk[0].times == fast[0].times
    assert walk[0].stats == fast[0].stats
    assert [(s.passed, s.aborted, s.iterations) for s in walk[0].strips] == [
        (s.passed, s.aborted, s.iterations) for s in fast[0].strips
    ]
    assert walk[1].scalars == fast[1].scalars
    for name in ("a", "s"):
        np.testing.assert_array_equal(walk[1].arrays[name], fast[1].arrays[name])

    # Against the unstripped protocol (fresh env: run_speculative mutates).
    program = parse(TEMPLATE)
    plan = build_plan(program)
    env = Environment(program, inputs)
    sim = DoallSimulator(fx80().with_procs(4), ScheduleKind.BLOCK)
    unstripped = run_speculative(
        program, plan.loop, env, plan, sim, eager=eager, engine="compiled"
    )

    stripped = fast[0]
    if unstripped.result.passed:
        # A whole-loop pass means no intra-strip conflicts either: every
        # strip passes and the aggregate verdict, tw and tm reproduce the
        # unstripped analysis exactly.
        assert stripped.result.passed
        assert all(s.passed for s in stripped.strips)
        assert float(stripped.stats["strips_failed"]) == 0.0
        for name, detail in unstripped.result.details.items():
            agg = stripped.result.details[name]
            assert agg.tw == detail.tw, name
            assert agg.tm == detail.tm, name
            assert agg.fully_parallel == detail.fully_parallel, name
            assert agg.failed_elements == 0
    elif strip_size >= N:
        # One strip covering the whole loop is the unstripped test:
        # the verdict must agree (single-strip aggregation is lossless).
        assert stripped.result.passed == unstripped.result.passed
