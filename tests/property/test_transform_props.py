"""Properties of the source-to-source transforms and eager detection."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.while_transform import transform_list_traversal
from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.machine.costmodel import CostModel
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy

N = 10
M = 6

WALKER = f"""
program walker
  integer p, head, n
  integer nxt({N}), node({N})
  real y({M}), g({N})
  real t
  p = head
  do while (p > 0)
    t = g(p) + 1.0
    y(node(p)) = y(node(p)) + t
    p = nxt(p)
  end do
end
"""


@st.composite
def linked_lists(draw):
    """A random acyclic list over a random subset of the N nodes."""
    length = draw(st.integers(min_value=0, max_value=N))
    order = draw(st.permutations(list(range(1, N + 1))))[:length]
    nxt = np.zeros(N, dtype=np.int64)
    for a, b in zip(order[:-1], order[1:]):
        nxt[a - 1] = b
    head = order[0] if order else 0
    return head, nxt


nodes_strategy = st.lists(
    st.integers(min_value=1, max_value=M), min_size=N, max_size=N
)


@settings(max_examples=60, deadline=None)
@given(lst=linked_lists(), node=nodes_strategy)
def test_while_transform_preserves_semantics(lst, node):
    head, nxt = lst
    inputs = {
        "head": head,
        "nxt": nxt,
        "node": np.array(node),
        "g": np.linspace(0.1, 1.0, N),
        "y": np.linspace(-1.0, 1.0, M),
    }

    original = parse(WALKER)
    env_a = Environment(original, inputs)
    Interpreter(original, env_a, value_based=False).run()

    transformed = transform_list_traversal(parse(WALKER))
    env_b = Environment(transformed, inputs)
    Interpreter(transformed, env_b, value_based=False).run()

    np.testing.assert_allclose(env_b.arrays["y"], env_a.arrays["y"])
    assert env_b.scalars["p"] == env_a.scalars["p"]


@settings(max_examples=50, deadline=None)
@given(lst=linked_lists(), node=nodes_strategy, procs=st.integers(1, 4))
def test_transformed_walker_parallelizes_soundly(lst, node, procs):
    head, nxt = lst
    inputs = {
        "head": head,
        "nxt": nxt,
        "node": np.array(node),
        "g": np.linspace(0.1, 1.0, N),
        "y": np.linspace(-1.0, 1.0, M),
    }
    transformed = transform_list_traversal(parse(WALKER))
    runner = LoopRunner(transformed, inputs)
    model = CostModel(name="h", num_procs=procs)
    serial = runner.serial_run(model)
    report = runner.run(Strategy.SPECULATIVE, RunConfig(model=model))
    np.testing.assert_allclose(report.env.arrays["y"], serial.env.arrays["y"])


GATHER = f"""
program eagerprop
  integer i, n
  integer wloc({N}), rloc({N})
  real a(16), src({N})
  do i = 1, n
    a(wloc(i)) = a(rloc(i)) * 0.5 + src(i)
  end do
end
"""

locs = st.lists(st.integers(min_value=1, max_value=16), min_size=N, max_size=N)


@settings(max_examples=60, deadline=None)
@given(wloc=locs, rloc=locs, procs=st.integers(1, 4))
def test_eager_and_lazy_agree(wloc, rloc, procs):
    """Eager detection changes the cost, never the verdict or the state."""
    inputs = {
        "n": N,
        "wloc": np.array(wloc),
        "rloc": np.array(rloc),
        "src": np.linspace(0.2, 1.0, N),
        "a": np.linspace(1.0, 2.0, 16),
    }
    model = CostModel(name="h", num_procs=procs)

    def run(eager):
        runner = LoopRunner(parse(GATHER), dict(inputs))
        return runner.run(
            Strategy.SPECULATIVE,
            RunConfig(model=model, eager_failure_detection=eager),
        )

    lazy = run(False)
    eager = run(True)
    assert lazy.passed == eager.passed
    np.testing.assert_allclose(eager.env.arrays["a"], lazy.env.arrays["a"])
    if not lazy.passed:
        assert eager.loop_time <= lazy.loop_time + 1e-9
