"""Adaptive strategy engine tests."""

import numpy as np

from repro.machine.costmodel import CostModel
from repro.runtime.adaptive import AdaptivePolicy, AdaptiveRunner
from repro.runtime.orchestrator import RunConfig, Strategy


PERMUTED = (
    "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
    "  do i = 1, n\n    a(idx(i)) = v(i) * 2.0\n  end do\nend\n"
)
FLOWDEP = (
    "program p\n  integer i, n, w(8), r(8)\n  real a(16), v(8)\n"
    "  do i = 1, n\n    a(w(i)) = a(r(i)) + v(i)\n  end do\nend\n"
)

GOOD_INPUTS = {
    "n": 8, "idx": np.array([3, 1, 4, 2, 8, 6, 5, 7]), "v": np.arange(8.0),
}
BAD_INPUTS = {
    "n": 8,
    "w": np.arange(1, 9),
    "r": np.array([9, 1, 10, 2, 11, 3, 12, 4]),  # reads earlier writes
    "v": np.arange(8.0),
}


def adaptive(source, inputs, **policy_kw):
    from repro.dsl.parser import parse

    return AdaptiveRunner(
        parse(source),
        dict(inputs),
        config=RunConfig(model=CostModel(num_procs=4)),
        policy=AdaptivePolicy(**policy_kw),
    )


class TestHappyPath:
    def test_starts_speculative(self):
        runner = adaptive(PERMUTED, GOOD_INPUTS)
        assert runner.choose_strategy() is Strategy.SPECULATIVE

    def test_passing_loop_stays_speculative_and_reuses(self):
        runner = adaptive(PERMUTED, GOOD_INPUTS)
        for _ in range(3):
            report = runner.invoke()
            assert report.passed
        assert runner.stats.passes == 3
        assert runner.stats.reuses == 2  # invocations 2 and 3 reuse

    def test_total_time_accumulates(self):
        runner = adaptive(PERMUTED, GOOD_INPUTS)
        runner.invoke()
        first = runner.stats.total_time
        runner.invoke()
        assert runner.stats.total_time > first


class TestFailureEscalation:
    def test_failure_switches_to_inspector(self):
        runner = adaptive(FLOWDEP, BAD_INPUTS, max_consecutive_failures=3,
                          use_schedule_cache=False)
        first = runner.invoke()
        assert not first.passed
        assert runner.choose_strategy() is Strategy.INSPECTOR
        second = runner.invoke()
        assert second.strategy == "inspector"
        assert not second.passed

    def test_gives_up_after_max_failures(self):
        runner = adaptive(FLOWDEP, BAD_INPUTS, max_consecutive_failures=2,
                          use_schedule_cache=False)
        runner.invoke()
        runner.invoke()
        assert runner.choose_strategy() is Strategy.SERIAL
        report = runner.invoke()
        assert report.strategy == "serial"
        assert runner.stats.serial_runs == 1

    def test_pattern_change_restores_optimism(self):
        runner = adaptive(FLOWDEP, BAD_INPUTS, max_consecutive_failures=1,
                          use_schedule_cache=False)
        runner.invoke()
        assert runner.choose_strategy() is Strategy.SERIAL
        # Fix the access pattern: the reads move to untouched elements.
        runner.set_input("r", np.array([9, 10, 11, 12, 13, 14, 15, 16]))
        assert runner.choose_strategy() is not Strategy.SERIAL
        report = runner.invoke()
        assert report.passed

    def test_pass_resets_failure_counter(self):
        runner = adaptive(FLOWDEP, BAD_INPUTS, max_consecutive_failures=2,
                          use_schedule_cache=False)
        runner.invoke()  # failure 1
        runner.set_input("r", np.array([9, 10, 11, 12, 13, 14, 15, 16]))
        report = runner.invoke()  # pass
        assert report.passed
        runner.set_input("r", BAD_INPUTS["r"])
        runner.invoke()  # failure again -> only 1 consecutive
        assert runner.choose_strategy() is not Strategy.SERIAL


class TestNonParallelizable:
    def test_carried_scalar_goes_straight_to_serial(self):
        source = (
            "program p\n  integer i, n\n  real s, a(8)\n"
            "  do i = 1, n\n    a(i) = s\n    s = a(i) + 1.0\n  end do\nend\n"
        )
        runner = adaptive(source, {"n": 8, "s": 1.0})
        assert runner.choose_strategy() is Strategy.SERIAL


class TestInspectorPreference:
    def test_unextractable_inspector_never_chosen(self):
        # TRACK-like loop: after failures the engine must not pick the
        # inspector (it would raise); it keeps speculating, then serial.
        source = (
            "program p\n  integer i, k, n, iw(16)\n  real out(16), x(16)\n"
            "  do i = 1, n\n    k = iw(n + i)\n    iw(i) = k\n"
            "    out(k) = out(k) + x(i)\n  end do\nend\n"
        )
        iw = np.zeros(16, dtype=np.int64)
        iw[8:] = np.array([1, 1, 2, 2, 3, 3, 4, 4])  # colliding reduction targets
        inputs = {"n": 8, "iw": iw, "x": np.arange(16.0)}
        runner = adaptive(source, inputs, use_schedule_cache=False)
        runner.invoke()
        assert runner.choose_strategy() in (Strategy.SPECULATIVE, Strategy.SERIAL)

    def test_thin_slice_prefers_inspector_after_failure(self):
        runner = adaptive(FLOWDEP, BAD_INPUTS, inspector_slice_threshold=0.9,
                          use_schedule_cache=False)
        runner.invoke()
        assert runner.choose_strategy() is Strategy.INSPECTOR

    def test_negative_threshold_disables_inspector_preference(self):
        runner = adaptive(FLOWDEP, BAD_INPUTS, inspector_slice_threshold=-1.0,
                          use_schedule_cache=False)
        runner.invoke()
        assert runner.choose_strategy() is Strategy.SPECULATIVE
