"""Feedback-driven planning: ``engine="auto"`` consuming loop profiles.

Cold runners must reproduce the static planner exactly; once a loop's
profile holds enough timed observations the planner goes epsilon-greedy
(deterministically — a per-loop decision counter, no randomness), picks
are bit-identical to the same engine requested explicitly, loops with a
recorded failure history are refused up front with the evidence on the
report, and a persisted store warms a brand-new runner immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.costmodel import fx80
from repro.runtime.engines import EPSILON_PERIOD, MIN_OBSERVATIONS
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.profile import LoopProfileStore, RunObservation
from repro.workloads.bdna import build_bdna
from repro.workloads.mdg import build_mdg
from repro.workloads.ocean import build_ocean

PROCS = 4


@pytest.fixture(autouse=True)
def _cold_kernel_cache():
    """Keep the jit warm-up ledger cold so the eligible-engine set is
    the same on every host (a warm ledger would add "jit" to it)."""
    from repro.runtime.profile import kernel_cache

    kernel_cache.clear()
    yield
    kernel_cache.clear()


def _obs(engine, doall_s, *, passed=True, strip_size=None):
    return RunObservation(
        strategy="speculative", engine=engine, backend="fork",
        wall_s=doall_s, doall_s=doall_s, passed=passed,
        strip_size=strip_size,
    )


def _runner(build, **kwargs):
    workload = build()
    return LoopRunner(workload.program(), workload.inputs, **kwargs)


def _seed(runner, *observations):
    for obs in observations:
        runner.profiles.observe(runner._loop_key(), obs)


def _config(engine, **kwargs):
    return RunConfig(model=fx80().with_procs(PROCS), engine=engine, **kwargs)


def _assert_reports_identical(ref, got):
    assert got.passed == ref.passed
    assert got.test_result == ref.test_result
    assert got.times.as_dict() == ref.times.as_dict()
    assert got.stats == ref.stats
    assert got.env.scalars == ref.env.scalars
    assert got.env.arrays.keys() == ref.env.arrays.keys()
    for name in ref.env.arrays:
        np.testing.assert_array_equal(
            ref.env.arrays[name], got.env.arrays[name], err_msg=name
        )


class TestColdStart:
    def test_cold_auto_uses_static_signals(self):
        runner = _runner(lambda: build_bdna(n=60))
        report = runner.run(Strategy.SPECULATIVE, _config("auto"))
        assert report.engine_used == "vectorized"
        (_key, reason), = report.engine_decisions
        assert "classifier accepted" in reason
        assert "feedback" not in reason

    def test_one_observation_is_still_cold(self):
        assert MIN_OBSERVATIONS == 2
        runner = _runner(lambda: build_bdna(n=60))
        _seed(runner, _obs("compiled", 0.001))
        report = runner.run(Strategy.SPECULATIVE, _config("auto"))
        assert "classifier accepted" in report.engine_decisions[0][1]

    def test_untimed_history_does_not_warm_the_planner(self):
        """Reused-schedule and refused runs carry no doall timing; they
        must not count toward the warm threshold."""
        runner = _runner(lambda: build_bdna(n=60))
        _seed(
            runner,
            _obs(None, 0.0, passed=None),
            RunObservation(strategy="speculative", engine="compiled",
                           backend="fork", wall_s=0.1, doall_s=0.1,
                           passed=True, reused=True),
        )
        report = runner.run(Strategy.SPECULATIVE, _config("auto"))
        assert "classifier accepted" in report.engine_decisions[0][1]


class TestWarmExploit:
    @pytest.mark.parametrize(
        "build",
        [
            pytest.param(lambda: build_bdna(n=60), id="bdna"),
            pytest.param(lambda: build_mdg(n=60), id="mdg"),
            pytest.param(lambda: build_ocean(nk=150), id="ocean"),
        ],
    )
    def test_picks_best_mean_bit_identically(self, build):
        """History says compiled is fastest → the warm planner overrides
        the static vectorized pick, and the run is bit-identical to an
        explicitly requested compiled run."""
        auto = _runner(build)
        _seed(
            auto,
            _obs("compiled", 0.001), _obs("compiled", 0.003),
            _obs("vectorized", 0.5), _obs("vectorized", 0.7),
        )
        got = auto.run(Strategy.SPECULATIVE, _config("auto"))
        ref = _runner(build).run(Strategy.SPECULATIVE, _config("compiled"))

        assert got.engine_used == "compiled"
        (_key, reason), = got.engine_decisions
        assert "feedback" in reason
        assert "best mean doall wall clock" in reason
        assert "2 runs" in reason and "4 timed runs total" in reason
        _assert_reports_identical(ref, got)

    def test_failing_loop_parity_when_warm(self):
        """A warm pick on a loop that then fails the LRPD test backs out
        exactly like the explicit engine would (first failure — no veto
        history yet)."""
        build = lambda: build_ocean(nk=150, overlap=True)  # noqa: E731
        auto = _runner(build)
        _seed(auto, _obs("walk", 0.001), _obs("walk", 0.003))
        got = auto.run(Strategy.SPECULATIVE, _config("auto"))
        ref = _runner(build).run(Strategy.SPECULATIVE, _config("walk"))
        assert got.engine_used == "walk"
        assert got.passed is False
        _assert_reports_identical(ref, got)

    def test_worker_sharded_warm_pick(self):
        """With workers requested only sharding-capable engines are
        eligible, so a compiled history cannot elect compiled."""
        build = lambda: build_bdna(n=60)  # noqa: E731
        auto = _runner(build)
        _seed(
            auto,
            _obs("compiled", 0.0001), _obs("compiled", 0.0001),
            _obs("vectorized", 0.002), _obs("vectorized", 0.002),
        )
        cfg = _config("auto", workers=2, backend="threads")
        got = auto.run(Strategy.SPECULATIVE, cfg)
        ref = _runner(build).run(
            Strategy.SPECULATIVE, _config("vectorized", workers=2,
                                          backend="threads")
        )
        assert got.engine_used == "vectorized"
        _assert_reports_identical(ref, got)

    def test_stripped_warm_parity(self):
        build = lambda: build_bdna(n=60)  # noqa: E731
        auto = _runner(build)
        _seed(
            auto,
            _obs("vectorized", 0.001), _obs("vectorized", 0.001),
            _obs("compiled", 0.4),
        )
        got = auto.run(Strategy.STRIPPED, _config("auto", strip_size=16))
        ref = _runner(build).run(
            Strategy.STRIPPED, _config("vectorized", strip_size=16)
        )
        assert got.engine_used == "vectorized"
        assert all(
            "feedback" in reason for _key, reason in got.engine_decisions
        )
        _assert_reports_identical(ref, got)


class TestExploration:
    def test_every_nth_decision_explores_least_observed(self):
        runner = _runner(lambda: build_bdna(n=60))
        key = runner._loop_key()
        _seed(runner, _obs("compiled", 0.001), _obs("compiled", 0.001))
        # Advance the deterministic schedule to the exploration slot.
        for _ in range(EPSILON_PERIOD - 1):
            runner.profiles.next_decision(key)
        report = runner.run(Strategy.SPECULATIVE, _config("auto"))
        (_key, reason), = report.engine_decisions
        assert "exploring" in reason
        assert f"decision #{EPSILON_PERIOD}" in reason
        # Least-observed eligible engine, ties broken alphabetically:
        # vectorized and walk are unseen, so vectorized is explored.
        assert report.engine_used == "vectorized"

    def test_schedule_is_deterministic(self):
        """Two runners with identical seeded history make identical
        decision sequences — no randomness anywhere."""
        build = lambda: build_bdna(n=60)  # noqa: E731
        picks = []
        for _ in range(2):
            runner = _runner(build)
            _seed(runner, _obs("compiled", 0.001), _obs("walk", 0.3))
            sequence = []
            for _ in range(3):
                report = runner.run(Strategy.SPECULATIVE, _config("auto"))
                sequence.append(report.engine_used)
            picks.append(sequence)
        assert picks[0] == picks[1]


class TestFailureVeto:
    def _fail_config(self):
        return _config("auto")

    def test_history_of_failures_refuses_speculation(self):
        runner = _runner(lambda: build_ocean(nk=150, overlap=True))
        first = runner.run(Strategy.SPECULATIVE, self._fail_config())
        assert first.passed is False
        second = runner.run(Strategy.SPECULATIVE, self._fail_config())
        assert second.passed is False  # 1/1 failed: below min attempts

        third = runner.run(Strategy.SPECULATIVE, self._fail_config())
        assert third.passed is None
        assert third.stats.get("refused") == 1.0
        assert third.strategy == "serial"
        (_key, reason), = third.engine_decisions
        assert "failure rate" in reason
        assert "2/2" in reason

        # The veto is sticky: refused runs are untested and must not
        # dilute the recorded failure rate.
        fourth = runner.run(Strategy.SPECULATIVE, self._fail_config())
        assert fourth.stats.get("refused") == 1.0

    def test_vetoed_run_matches_serial_state(self):
        build = lambda: build_ocean(nk=150, overlap=True)  # noqa: E731
        runner = _runner(build)
        _seed(
            runner,
            _obs("compiled", 0.1, passed=False),
            _obs("compiled", 0.1, passed=False),
        )
        vetoed = runner.run(Strategy.SPECULATIVE, self._fail_config())
        serial = _runner(build).run(Strategy.SERIAL, _config("compiled"))
        for name in serial.env.arrays:
            np.testing.assert_array_equal(
                vetoed.env.arrays[name], serial.env.arrays[name],
                err_msg=name,
            )

    def test_explicit_engine_ignores_failure_history(self):
        """Only the planner may act on history; an explicitly requested
        engine keeps the paper's optimistic protocol."""
        runner = _runner(lambda: build_ocean(nk=150, overlap=True))
        _seed(
            runner,
            _obs("vectorized", 0.1, passed=False),
            _obs("vectorized", 0.1, passed=False),
        )
        report = runner.run(Strategy.SPECULATIVE, _config("vectorized"))
        assert report.passed is False  # it speculated (and failed) anyway
        assert report.stats.get("refused") is None

    def test_stripped_strategy_respects_veto(self):
        runner = _runner(lambda: build_ocean(nk=150, overlap=True))
        _seed(
            runner,
            _obs("compiled", 0.1, passed=False),
            _obs("compiled", 0.1, passed=False),
        )
        report = runner.run(
            Strategy.STRIPPED, _config("auto", strip_size=32)
        )
        assert report.stats.get("refused") == 1.0
        assert "failure rate" in report.engine_decisions[0][1]


class TestWarmStartStripSize:
    def test_adaptive_sizer_warm_starts_from_history(self):
        runner = _runner(lambda: build_bdna(n=200))
        _seed(runner, _obs("compiled", 0.1, strip_size=64))
        report = runner.run(
            Strategy.STRIPPED,
            _config("auto", adaptive_strip_sizing=True),
        )
        reasons = [reason for _key, reason in report.engine_decisions]
        assert any("warm-starting the adaptive strip size at 64" in r
                   for r in reasons)
        assert report.strips[0].strip_size == 64

    def test_explicit_strip_size_wins_over_history(self):
        runner = _runner(lambda: build_bdna(n=200))
        _seed(runner, _obs("compiled", 0.1, strip_size=64))
        report = runner.run(
            Strategy.STRIPPED,
            _config("auto", strip_size=8, adaptive_strip_sizing=True),
        )
        assert report.strips[0].strip_size == 8

    def test_explicit_engine_does_not_warm_start(self):
        runner = _runner(lambda: build_bdna(n=200))
        _seed(runner, _obs("compiled", 0.1, strip_size=64))
        report = runner.run(
            Strategy.STRIPPED,
            _config("compiled", adaptive_strip_sizing=True),
        )
        from repro.runtime.adaptive import AdaptiveStripSizer

        assert report.strips[0].strip_size == AdaptiveStripSizer.DEFAULT_INITIAL


class TestPersistenceAcrossRunners:
    def test_saved_profile_warms_a_fresh_runner(self, tmp_path):
        path = tmp_path / "profiles.json"
        build = lambda: build_bdna(n=60)  # noqa: E731

        trainer = _runner(build, profiles=LoopProfileStore(path=path))
        trainer.run(Strategy.SPECULATIVE, _config("compiled"))
        trainer.run(Strategy.SPECULATIVE, _config("compiled"))
        trainer.profiles.save()

        fresh = _runner(build, profiles=LoopProfileStore(path=path))
        assert fresh.profiles.load_error is None
        report = fresh.run(Strategy.SPECULATIVE, _config("auto"))
        assert report.engine_used == "compiled"
        assert "feedback" in report.engine_decisions[0][1]

    def test_saved_verdict_reused_by_fresh_runner(self, tmp_path):
        path = tmp_path / "profiles.json"
        build = lambda: build_ocean(nk=150)  # noqa: E731
        cfg = _config("compiled", use_schedule_cache=True)

        first_runner = _runner(build, profiles=LoopProfileStore(path=path))
        first = first_runner.run(Strategy.SPECULATIVE, cfg)
        assert not first.reused_schedule
        first_runner.profiles.save()

        second_runner = _runner(build, profiles=LoopProfileStore(path=path))
        second = second_runner.run(Strategy.SPECULATIVE, cfg)
        assert second.reused_schedule
        assert second.cache_stats["hits"] == 1
        assert second.passed == first.passed
        for name in first.env.arrays:
            np.testing.assert_array_equal(
                first.env.arrays[name], second.env.arrays[name],
                err_msg=name,
            )

    def test_failure_history_survives_persistence(self, tmp_path):
        path = tmp_path / "profiles.json"
        build = lambda: build_ocean(nk=150, overlap=True)  # noqa: E731

        trainer = _runner(build, profiles=LoopProfileStore(path=path))
        for _ in range(2):
            assert trainer.run(
                Strategy.SPECULATIVE, _config("auto")
            ).passed is False
        trainer.profiles.save()

        fresh = _runner(build, profiles=LoopProfileStore(path=path))
        report = fresh.run(Strategy.SPECULATIVE, _config("auto"))
        assert report.stats.get("refused") == 1.0
        assert "failure rate" in report.engine_decisions[0][1]


class TestReportTelemetry:
    def test_every_run_leaves_an_observation(self):
        runner = _runner(lambda: build_bdna(n=60))
        runner.run(Strategy.SPECULATIVE, _config("vectorized"))
        runner.run(Strategy.SERIAL, _config("compiled"))
        observations = runner.profiles.observations(runner._loop_key())
        assert len(observations) == 2
        assert observations[0].engine == "vectorized"
        assert observations[0].doall_s > 0.0
        assert observations[0].passed is True
        assert observations[1].strategy == "serial"
        assert observations[1].passed is None

    def test_cache_counters_on_report(self):
        runner = _runner(lambda: build_ocean(nk=150))
        cfg = _config("compiled", use_schedule_cache=True)
        first = runner.run(Strategy.SPECULATIVE, cfg)
        assert first.cache_stats == {
            "lookups": 1, "hits": 0, "misses": 1,
            "evictions": 0, "entries": 1,
        }
        second = runner.run(Strategy.SPECULATIVE, cfg)
        assert second.cache_stats["hits"] == 1
        assert second.cache_stats["entries"] == 1

    def test_stripped_run_records_converged_strip_size(self):
        runner = _runner(lambda: build_bdna(n=200))
        runner.run(
            Strategy.STRIPPED,
            _config("compiled", strip_size=16, adaptive_strip_sizing=True),
        )
        obs, = runner.profiles.observations(runner._loop_key())
        assert obs.strip_size is not None
        assert obs.strategy == "stripped"
