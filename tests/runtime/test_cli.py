"""CLI tests."""

import pytest

from repro.cli import SHORT_NAMES, main


class TestList:
    def test_lists_all_seven(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for short in ("track", "bdna", "mdg", "adm", "ocean", "spice", "dyfesm"):
            assert short in out


class TestAnalyze:
    def test_analyze_file(self, tmp_path, capsys):
        source = (
            "program demo\n  integer i, n, idx(8)\n  real a(8)\n"
            "  do i = 1, n\n    a(idx(i)) = 1.0\n  end do\nend\n"
        )
        path = tmp_path / "demo.f"
        path.write_text(source)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "static analysis" in out
        assert "tested=['a']" in out

    def test_analyze_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/loop.f"]) == 1
        assert "error" in capsys.readouterr().err

    def test_analyze_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "bad.f"
        path.write_text("program p\n  do od\nend\n")
        assert main(["analyze", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_run_dyfesm_speculative(self, capsys):
        assert main(["run", "dyfesm", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "speculative" in out
        assert "speedup" in out
        assert "phase breakdown" in out

    def test_run_inspector_on_track_fails_cleanly(self, capsys):
        assert main(["run", "track", "--strategy", "inspector", "--procs", "2"]) == 1
        assert "inspector strategy unavailable" in capsys.readouterr().err

    def test_run_with_machine_choice(self, capsys):
        assert main(["run", "ocean", "--machine", "fx2800"]) == 0
        assert "fx2800" in capsys.readouterr().out

    def test_run_pd_mode(self, capsys):
        assert main(["run", "adm", "--procs", "2", "--test-mode", "pd"]) == 0
        assert "pd test" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nosuch"])


class TestVerboseFallbacks:
    def test_rejected_loop_prints_fallback_reason(self, capsys):
        assert main(
            ["run", "spice", "--engine", "vectorized", "--verbose", "--procs", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "engine fallback" in out
        assert "vectorized -> compiled" in out
        assert "reduction" in out

    def test_committed_block_prints_no_fallback(self, capsys):
        assert main(
            ["run", "bdna", "--engine", "vectorized", "--verbose", "--procs", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "engine fallback : none (vectorized block committed)" in out

    def test_quiet_run_omits_fallback_lines(self, capsys):
        assert main(["run", "spice", "--engine", "vectorized", "--procs", "4"]) == 0
        assert "engine fallback" not in capsys.readouterr().out


class TestProfilePath:
    def test_profile_persists_across_invocations(self, tmp_path, capsys):
        """Two CLI runs over the same --profile-path: the first records
        the verdict, the second serves it from the loaded store."""
        path = tmp_path / "profiles.json"
        args = ["run", "ocean", "--procs", "4",
                "--profile-path", str(path), "--verbose"]

        assert main(args) == 0
        first = capsys.readouterr().out
        assert "hits=0" in first
        assert path.exists()

        assert main(args) == 0
        second = capsys.readouterr().out
        assert "hits=1" in second
        assert "schedule reuse" in second

    def test_corrupt_profile_warns_and_still_runs(self, tmp_path, capsys):
        path = tmp_path / "profiles.json"
        path.write_text("{ not json")
        assert main(
            ["run", "ocean", "--procs", "4", "--profile-path", str(path)]
        ) == 0
        captured = capsys.readouterr()
        assert "profile" in captured.err
        # The broken file was replaced by a clean save on exit.
        assert main(
            ["run", "ocean", "--procs", "4", "--profile-path", str(path),
             "--verbose"]
        ) == 0
        assert "hits=1" in capsys.readouterr().out

    def test_quiet_runs_omit_cache_counters(self, capsys):
        assert main(["run", "ocean", "--procs", "4"]) == 0
        assert "profile cache" not in capsys.readouterr().out


class TestFigure:
    def test_figure_output(self, capsys):
        assert main(["figure", "dyfesm"]) == 0
        out = capsys.readouterr().out
        assert "procs" in out
        assert "speculative" in out
        assert "ideal" in out


def test_short_names_cover_paper_loops():
    assert len(SHORT_NAMES) == 7


class TestReport:
    def test_quick_report_writes_artifacts(self, tmp_path, capsys):
        assert main(["report", "--quick", "--out", str(tmp_path / "r")]) == 0
        produced = {p.name for p in (tmp_path / "r").iterdir()}
        for expected in (
            "table1.txt", "table2.txt", "fig_track.txt", "fig_bdna.txt",
            "fig_failure.txt", "ablation_pd_vs_lpd.txt",
            "ablation_procwise.txt", "ablation_marking.txt",
            "fig_ocean_reuse.txt",
        ):
            assert expected in produced
        table1 = (tmp_path / "r" / "table1.txt").read_text()
        assert "TRACK_NLFILT_do300" in table1

    def test_report_creates_nested_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        assert main(["report", "--quick", "--out", str(target)]) == 0
        assert (target / "table2.txt").exists()


class TestParallelEngine:
    def test_run_parallel_engine_reports_wall_clock(self, capsys):
        assert main(
            ["run", "mdg", "--procs", "4", "--engine", "parallel",
             "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "measured wall clock" in out
        assert "engine=parallel" in out

    def test_workers_flag_requires_nothing_else(self, capsys):
        # --workers is inert under the default compiled engine.
        assert main(["run", "ocean", "--procs", "2", "--workers", "3"]) == 0
        assert "speculative" in capsys.readouterr().out


def test_module_entry_point_imports():
    # ``python -m repro`` lives in repro.__main__; importing it covers the
    # module body (the __main__ guard keeps main() from running).
    import repro.__main__  # noqa: F401


class TestLift:
    def test_lift_corpus_target(self, capsys):
        assert main(["lift", "corpus/histogram"]) == 0
        out = capsys.readouterr().out
        assert "frontend : python" in out
        assert "lift     : ok" in out
        assert "lifted IR" in out
        assert "vectorize:" in out

    def test_lift_corpus_run_is_bit_identical(self, capsys):
        assert main(
            ["lift", "corpus/histogram", "--run", "--procs", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "parity   : bit-identical to native Python execution" in out

    def test_lift_rejected_corpus_loop_names_reason(self, capsys):
        assert main(["lift", "corpus/first_negative"]) == 1
        out = capsys.readouterr().out
        assert "rejected (break-unsupported)" in out

    def test_lift_python_file(self, capsys):
        assert main(["lift", "examples/corpus/histogram.py", "--run",
                     "--procs", "1"]) == 0
        out = capsys.readouterr().out
        assert "frontend : python" in out
        assert "lift     : ok" in out

    def test_lift_unliftable_file_exits_nonzero(self, capsys):
        assert main(["lift", "examples/corpus/unliftable.py"]) == 1
        assert "break-unsupported" in capsys.readouterr().out

    def test_lift_missing_file(self, capsys):
        assert main(["lift", "/nonexistent/loop.py"]) == 1
        assert "error" in capsys.readouterr().err

    def test_lift_dsl_file_via_suffix(self, tmp_path, capsys):
        path = tmp_path / "demo.f"
        path.write_text(
            "program demo\n  integer i, n\n  real a(8)\n"
            "  do i = 1, n\n    a(i) = 1.0\n  end do\nend\n"
        )
        assert main(["lift", str(path)]) == 0
        assert "frontend : dsl" in capsys.readouterr().out

    def test_list_shows_corpus_loops(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "corpus/histogram" in out
        assert "corpus/first_negative" in out
