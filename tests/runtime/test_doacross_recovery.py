"""The speculative DOACROSS recovery tier, end to end.

A failed LRPD run whose shadow stamps measure a min dependence distance
``d > 1`` re-executes as a priced pipelined DOACROSS instead of a plain
serial re-run.  State must stay bit-identical to the rollback path on
every configuration (whole-loop, stripped, real workers); the planner
arms the tier only when profiled history justifies it; and distance-≤1
loops are vetoed deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dependence import DepKind, DistanceReport, ElementDistance
from repro.core.shadow import Granularity
from repro.machine.costmodel import fx80
from repro.runtime.engines import get_engine
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.profile import RunObservation
from repro.workloads.synthetic import build_partial_parallel, build_synthdoacross

PROCS = 8
DISTANCE = 16


@pytest.fixture(autouse=True)
def _cold_kernel_cache():
    """Deterministic planner-eligible engine set on every host."""
    from repro.runtime.profile import kernel_cache

    kernel_cache.clear()
    yield
    kernel_cache.clear()


def _runner(build=None) -> LoopRunner:
    workload = (build or (lambda: build_synthdoacross(
        n=200, distance=DISTANCE, work=20)))()
    return LoopRunner(workload.program(), workload.inputs)


def _config(**kwargs) -> RunConfig:
    return RunConfig(model=fx80().with_procs(PROCS), **kwargs)


def _assert_matches_serial(runner: LoopRunner, report, config) -> None:
    serial = runner.serial_run(config.model)
    np.testing.assert_array_equal(
        report.env.arrays["a"], serial.env.arrays["a"],
        err_msg="recovered state diverged from the serial oracle",
    )


def _obs(*, passed, recovered_fraction=None, sync_wait_cycles=0.0):
    return RunObservation(
        strategy="speculative", engine="compiled", backend="fork",
        wall_s=0.01, doall_s=0.01, passed=passed,
        recovered_fraction=recovered_fraction,
        sync_wait_cycles=sync_wait_cycles,
    )


class TestRecoveryDecision:
    """The engine's deterministic go/veto on measured distances."""

    def _report(self, *distances: int) -> DistanceReport:
        return DistanceReport(
            num_granules=64,
            distances=[
                ElementDistance("a", i, DepKind.FLOW, d, exact=True)
                for i, d in enumerate(distances)
            ],
        )

    def _engine(self):
        return get_engine("doacross")

    def test_goes_at_measured_distance(self):
        d, reason = self._engine().recovery_decision(
            self._report(7, 4), aborted=False, granularity=Granularity.ITERATION
        )
        assert d == 4
        assert "pipelined DOACROSS at distance 4" in reason

    def test_vetoes_processor_granularity(self):
        d, reason = self._engine().recovery_decision(
            self._report(4), aborted=False, granularity=Granularity.PROCESSOR
        )
        assert d is None
        assert "processor-wise" in reason

    def test_vetoes_aborted_attempt(self):
        d, reason = self._engine().recovery_decision(
            self._report(4), aborted=True, granularity=Granularity.ITERATION
        )
        assert d is None
        assert "prefix" in reason

    def test_vetoes_unmeasured_distance(self):
        d, reason = self._engine().recovery_decision(
            self._report(), aborted=False, granularity=Granularity.ITERATION
        )
        assert d is None
        assert "no cross-iteration dependence" in reason

    def test_vetoes_serial_chain(self):
        d, reason = self._engine().recovery_decision(
            self._report(1), aborted=False, granularity=Granularity.ITERATION
        )
        assert d is None
        assert "fully serial chain" in reason


class TestWholeLoopRecovery:
    def test_bit_identical_with_pipelined_pricing(self):
        runner = _runner()
        config = _config()
        report = runner.run(Strategy.DOACROSS_RECOVERY, config)
        assert not report.passed
        assert report.strategy == "doacross_recovery"
        assert report.stats["recovery_distance"] == DISTANCE
        assert report.stats["recovered_iterations"] == 200.0
        assert report.stats["recovered_fraction"] > 0.0
        assert report.stats["recovery_sync_waits"] > 0.0
        _assert_matches_serial(runner, report, config)

    def test_recovery_beats_rollback(self):
        config = _config()
        recovered = _runner().run(Strategy.DOACROSS_RECOVERY, config)
        rolled_back = _runner().run(Strategy.SPECULATIVE, config)
        assert not rolled_back.passed
        assert "recovered_fraction" not in rolled_back.stats
        assert recovered.loop_time < rolled_back.loop_time
        assert recovered.speedup > rolled_back.speedup

    def test_decision_recorded_on_report(self):
        report = _runner().run(Strategy.DOACROSS_RECOVERY, _config())
        reasons = [reason for _key, reason in report.engine_decisions]
        assert any(
            f"pipelined DOACROSS at distance {DISTANCE}" in r for r in reasons
        )

    def test_observation_carries_recovery_fields(self):
        runner = _runner()
        report = runner.run(Strategy.DOACROSS_RECOVERY, _config())
        obs = runner.profiles.observations(runner._loop_key())[-1]
        assert obs.recovered_fraction == report.stats["recovered_fraction"]
        assert obs.sync_wait_cycles == report.stats["recovery_sync_wait_cycles"]


class TestStrippedRecovery:
    def test_every_failed_strip_recovers(self):
        runner = _runner()
        config = _config(strip_size=50)
        report = runner.run(Strategy.DOACROSS_RECOVERY, config)
        assert report.strategy == "doacross_recovery"
        assert [s.recovered for s in report.strips] == [True] * 4
        assert report.stats["strips_recovered"] == 4.0
        assert report.stats["recovery_distance"] == DISTANCE
        assert report.stats["recovered_fraction"] > 0.0
        _assert_matches_serial(runner, report, config)

    def test_worker_sharded_strips_stay_bit_identical(self):
        runner = _runner()
        config = _config(
            engine="parallel", backend="threads", workers=2, strip_size=50
        )
        report = runner.run(Strategy.DOACROSS_RECOVERY, config)
        assert report.stats["strips_recovered"] == 4.0
        _assert_matches_serial(runner, report, config)


class TestDeterministicVeto:
    def test_distance_one_band_rolls_back_serially(self):
        runner = _runner(lambda: build_partial_parallel(n=96, band_length=16))
        config = _config()
        report = runner.run(Strategy.DOACROSS_RECOVERY, config)
        assert not report.passed
        assert report.stats["recovered_fraction"] == 0.0
        assert "strips_recovered" not in report.stats
        reasons = [reason for _key, reason in report.engine_decisions]
        assert any(
            "recovery veto: measured min dependence distance 1" in r
            for r in reasons
        )
        _assert_matches_serial(runner, report, config)

    def test_vetoed_strips_are_not_marked_recovered(self):
        runner = _runner(lambda: build_partial_parallel(n=96, band_length=16))
        config = _config(strip_size=32)
        report = runner.run(Strategy.DOACROSS_RECOVERY, config)
        assert not any(s.recovered for s in report.strips)
        assert report.stats["recovered_fraction"] == 0.0
        _assert_matches_serial(runner, report, config)


class TestPlannerArming:
    """``engine="auto"`` learns when to arm the tier from the profile."""

    def test_first_failure_runs_unarmed(self):
        runner = _runner()
        report = runner.run(Strategy.SPECULATIVE, _config(engine="auto"))
        assert not report.passed
        assert "recovered_fraction" not in report.stats
        reasons = [reason for _key, reason in report.engine_decisions]
        assert not any("arming DOACROSS recovery" in r for r in reasons)

    def test_second_failure_arms_recovery(self):
        runner = _runner()
        config = _config(engine="auto")
        runner.run(Strategy.SPECULATIVE, config)
        report = runner.run(Strategy.SPECULATIVE, config)
        assert report.strategy == "speculative"
        reasons = [reason for _key, reason in report.engine_decisions]
        assert any("feedback: arming DOACROSS recovery" in r for r in reasons)
        assert report.stats["recovered_fraction"] > 0.0
        _assert_matches_serial(runner, report, config)

    def test_explicit_engines_never_arm(self):
        runner = _runner()
        config = _config(engine="compiled")
        runner.run(Strategy.SPECULATIVE, config)
        report = runner.run(Strategy.SPECULATIVE, config)
        assert "recovered_fraction" not in report.stats
        assert report.engine_decisions == []

    def test_recovery_history_rescues_a_vetoed_loop(self):
        runner = _runner()
        key = runner._loop_key()
        for _ in range(2):
            runner.profiles.observe(key, _obs(
                passed=False, recovered_fraction=0.5, sync_wait_cycles=4.0,
            ))
        config = _config(engine="auto")
        report = runner.run(Strategy.SPECULATIVE, config)
        # The failure veto fired, but recovery history overrode it: the
        # loop speculated (and failed, and recovered) instead of refusing.
        assert not report.passed
        assert report.stats["recovered_fraction"] > 0.0
        reasons = [reason for _key, reason in report.engine_decisions]
        assert any("skipping speculation" in r for r in reasons)
        assert any("speculating past the failure veto" in r for r in reasons)
        _assert_matches_serial(runner, report, config)

    def test_lifted_veto_resets_the_strip_size_floor(self):
        runner = _runner()
        loop_key = runner._loop_key()
        # A vetoed loop whose failures then age out of the ring: the
        # next planner-driven strip-mined run must drop the warm-start
        # floor (the history behind it went stale) and say so.
        for _ in range(2):
            runner.profiles.observe(loop_key, _obs(passed=False))
        assert runner.profiles.speculation_veto(loop_key) is not None
        for _ in range(8):
            runner.profiles.observe(loop_key, _obs(passed=True))
        config = _config(
            engine="auto", strip_size=50, adaptive_strip_sizing=True
        )
        report = runner.run(Strategy.STRIPPED, config)
        reasons = [reason for _key, reason in report.engine_decisions]
        assert any(
            "resetting the adaptive strip-size floor" in r for r in reasons
        )
        _assert_matches_serial(runner, report, config)

    def test_poor_recovery_history_stops_arming(self):
        runner = _runner()
        loop_key = runner._loop_key()
        runner.profiles.observe(loop_key, _obs(
            passed=False, recovered_fraction=0.0,
        ))
        report = runner.run(Strategy.SPECULATIVE, _config(engine="auto"))
        assert "recovered_fraction" not in report.stats
        reasons = [reason for _key, reason in report.engine_decisions]
        assert any("failed runs roll back serially" in r for r in reasons)
        assert runner.profiles.recovery_veto(loop_key) is not None
