"""Emulated doall execution tests."""

import numpy as np
import pytest

from repro.analysis.instrument import build_plan
from repro.core.shadow import Granularity, ShadowMarker
from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.runtime.doall import finalize_doall, run_doall

SOURCE = (
    "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
    "  do i = 1, n\n    a(idx(i)) = v(i) * 2.0\n  end do\nend\n"
)


def setup(source=SOURCE, inputs=None, procs=3, marked=True):
    program = parse(source)
    plan = build_plan(program)
    env = Environment(
        program,
        inputs or {"n": 8, "idx": np.array([3, 1, 4, 2, 8, 6, 5, 7]), "v": np.arange(8.0)},
    )
    marker = None
    if marked:
        sizes = {name: env.array_size(name) for name in plan.tested_arrays}
        marker = ShadowMarker(sizes)
    run = run_doall(program, plan.loop, env, plan, procs, marker=marker)
    return program, plan, env, run


class TestExecutionStructure:
    def test_every_iteration_executed_once(self):
        _, _, _, run = setup()
        executed = sorted(i for chunk in run.assignment for i in chunk)
        assert executed == list(range(8))
        assert run.num_iterations == 8

    def test_iteration_costs_aligned(self):
        _, _, _, run = setup()
        assert len(run.iteration_costs) == 8
        assert all(c.total_ops() > 0 for c in run.iteration_costs)

    def test_shared_array_untouched_before_finalize(self):
        _, _, env, run = setup()
        assert env.arrays["a"].tolist() == [0.0] * 8  # still in privates

    def test_final_proc_is_owner_of_last_iteration(self):
        _, _, _, run = setup(procs=3)
        final = run.final_proc()
        assert 7 in run.assignment[final]

    def test_marking_happened(self):
        _, _, _, run = setup()
        assert run.marker is not None
        assert run.marker.shadows["a"].tm == 8


class TestFinalize:
    def test_copy_out_matches_serial(self):
        program, plan, env, run = setup()
        finalize_doall(run, env, plan, plan.loop)
        expected = np.zeros(8)
        idx = np.array([3, 1, 4, 2, 8, 6, 5, 7]) - 1
        expected[idx] = np.arange(8.0) * 2.0
        np.testing.assert_allclose(env.arrays["a"], expected)

    def test_loop_var_set_past_bound(self):
        program, plan, env, run = setup()
        finalize_doall(run, env, plan, plan.loop)
        assert env.scalars["i"] == 9

    def test_zero_trip_loop(self):
        program, plan, env, run = setup(
            inputs={"n": 0, "idx": np.arange(1, 9), "v": np.zeros(8)}
        )
        stats = finalize_doall(run, env, plan, plan.loop)
        assert run.num_iterations == 0
        assert stats.copied_out == 0

    def test_unmarked_run_for_executor_phase(self):
        program, plan, env, run = setup(marked=False)
        assert run.marker is None
        finalize_doall(run, env, plan, plan.loop)
        assert env.arrays["a"].sum() > 0.0


class TestScalarHandling:
    def test_private_scalars_do_not_leak_between_procs(self):
        source = (
            "program p\n  integer i, n, idx(6)\n  real a(6), t, v(6)\n"
            "  do i = 1, n\n    t = v(i) * 10.0\n    a(idx(i)) = t\n  end do\nend\n"
        )
        inputs = {"n": 6, "idx": np.array([2, 4, 6, 1, 3, 5]), "v": np.arange(6.0)}
        program = parse(source)
        plan = build_plan(program)
        env = Environment(program, inputs)
        marker = ShadowMarker({n: env.array_size(n) for n in plan.tested_arrays})
        run = run_doall(program, plan.loop, env, plan, 3, marker=marker)
        finalize_doall(run, env, plan, plan.loop)
        expected = np.zeros(6)
        expected[np.array([2, 4, 6, 1, 3, 5]) - 1] = np.arange(6.0) * 10.0
        np.testing.assert_allclose(env.arrays["a"], expected)

    def test_scalar_reduction_partials_merged(self):
        source = (
            "program p\n  integer i, n, idx(6)\n  real a(6), s, v(6)\n"
            "  do i = 1, n\n    a(idx(i)) = v(i)\n    s = s + v(i)\n  end do\nend\n"
        )
        inputs = {
            "n": 6, "idx": np.array([2, 4, 6, 1, 3, 5]),
            "v": np.arange(6.0), "s": 100.0,
        }
        program = parse(source)
        plan = build_plan(program)
        env = Environment(program, inputs)
        marker = ShadowMarker({n: env.array_size(n) for n in plan.tested_arrays})
        run = run_doall(program, plan.loop, env, plan, 3, marker=marker)
        finalize_doall(run, env, plan, plan.loop)
        assert env.scalars["s"] == pytest.approx(100.0 + 15.0)


class TestProcessorWiseGranule:
    def test_granules_are_processor_ids(self):
        program = parse(SOURCE)
        plan = build_plan(program)
        env = Environment(
            program,
            {"n": 8, "idx": np.array([3, 1, 4, 2, 8, 6, 5, 7]), "v": np.arange(8.0)},
        )
        sizes = {n: env.array_size(n) for n in plan.tested_arrays}
        marker = ShadowMarker(sizes, granularity=Granularity.PROCESSOR)
        run_doall(program, plan.loop, env, plan, 2, marker=marker)
        # With 2 processors, last-write granules must only be 0 or 1.
        granules = set(marker.shadows["a"].last_write_granules().tolist())
        assert granules <= {-1, 0, 1}
