"""On-the-fly (eager) failure detection tests."""

import numpy as np
import pytest

from repro.analysis.instrument import build_plan
from repro.core.outcomes import TestMode
from repro.core.shadow import Granularity, ShadowArray, ShadowMarker
from repro.dsl.parser import parse
from repro.errors import SpeculationFailed
from repro.interp.env import Environment
from repro.machine.costmodel import CostModel
from repro.runtime.doall import run_doall
from repro.runtime.orchestrator import RunConfig

from tests.conftest import speculative_vs_serial

FLOWDEP = (
    "program p\n  integer i, n, w(40), r(40)\n  real a(80), v(40)\n"
    "  do i = 1, n\n    a(w(i)) = a(r(i)) + v(i)\n  end do\nend\n"
)


def flow_inputs(n=40):
    return {
        "n": n,
        "w": np.arange(1, n + 1),
        # Every iteration (except the first) reads its predecessor's write.
        "r": np.concatenate(([n + 1], np.arange(1, n))),
        "v": np.arange(float(n)),
    }


class TestShadowEagerChecks:
    def test_definite_flow_raises(self):
        shadow = ShadowArray("a", 8, eager=True)
        shadow.mark_write(2, granule=0)
        with pytest.raises(SpeculationFailed) as excinfo:
            shadow.mark_read(2, granule=1)
        assert excinfo.value.array == "a"
        assert excinfo.value.element == 2

    def test_anti_direction_does_not_raise(self):
        shadow = ShadowArray("a", 8, eager=True)
        shadow.mark_read(2, granule=1)
        shadow.mark_write(2, granule=3)  # later writer: legal

    def test_covered_read_does_not_raise(self):
        shadow = ShadowArray("a", 8, eager=True)
        shadow.mark_write(2, granule=1)
        shadow.mark_read(2, granule=1)

    def test_redux_mix_raises(self):
        shadow = ShadowArray("a", 8, eager=True)
        shadow.mark_redux(2, 0, "+")
        with pytest.raises(SpeculationFailed):
            shadow.mark_write(2, granule=1)

    def test_pure_reduction_does_not_raise(self):
        shadow = ShadowArray("a", 8, eager=True)
        for granule in range(5):
            shadow.mark_redux(2, granule, "+")

    def test_lazy_shadow_never_raises(self):
        shadow = ShadowArray("a", 8)
        shadow.mark_write(2, granule=0)
        shadow.mark_read(2, granule=1)  # recorded, not raised


class TestEagerExecution:
    def test_eager_aborts_early_and_recovers(self):
        report = speculative_vs_serial(
            FLOWDEP, flow_inputs(), arrays=["a"],
            config=RunConfig(
                model=CostModel(num_procs=4), eager_failure_detection=True
            ),
        )
        assert not report.passed
        assert report.stats["aborted_after"] < 40
        assert report.times.analysis == 0.0  # no analysis phase ran
        assert report.times.serial_rerun > 0.0

    def test_eager_cheaper_than_lazy_on_failure(self):
        lazy = speculative_vs_serial(FLOWDEP, flow_inputs(), arrays=["a"])
        eager = speculative_vs_serial(
            FLOWDEP, flow_inputs(), arrays=["a"],
            config=RunConfig(
                model=CostModel(num_procs=4), eager_failure_detection=True
            ),
        )
        assert not lazy.passed and not eager.passed
        assert eager.loop_time < lazy.loop_time

    def test_eager_identical_on_passing_loop(self):
        source = (
            "program p\n  integer i, n, idx(16)\n  real a(16), v(16)\n"
            "  do i = 1, n\n    a(idx(i)) = v(i)\n  end do\nend\n"
        )
        inputs = {"n": 16, "idx": np.random.default_rng(0).permutation(16) + 1,
                  "v": np.arange(16.0)}
        lazy = speculative_vs_serial(source, dict(inputs), arrays=["a"])
        eager = speculative_vs_serial(
            source, dict(inputs), arrays=["a"],
            config=RunConfig(
                model=CostModel(num_procs=4), eager_failure_detection=True
            ),
        )
        assert lazy.passed and eager.passed
        assert eager.loop_time == pytest.approx(lazy.loop_time)

    def test_eager_disabled_for_pd_mode(self):
        # Eager checks assume the directional LRPD predicates; other modes
        # silently fall back to lazy analysis.
        report = speculative_vs_serial(
            FLOWDEP, flow_inputs(), arrays=["a"],
            config=RunConfig(
                model=CostModel(num_procs=4),
                eager_failure_detection=True,
                test_mode=TestMode.PD,
            ),
        )
        assert not report.passed
        assert "aborted_after" not in report.stats

    def test_eager_disabled_for_processor_wise(self):
        report = speculative_vs_serial(
            FLOWDEP, flow_inputs(), arrays=["a"],
            config=RunConfig(
                model=CostModel(num_procs=4),
                eager_failure_detection=True,
                granularity=Granularity.PROCESSOR,
            ),
        )
        assert not report.passed
        assert "aborted_after" not in report.stats


class TestEagerEngineParity:
    """The compiled engine aborts exactly like the instrumented walker.

    In particular the partial iteration whose access raised must leave
    an *open* cost bracket that is discarded identically: the aborted
    position keeps a default (zero) IterationCost under both engines
    and both granularities.
    """

    def _doall(self, engine, granularity):
        program = parse(FLOWDEP)
        plan = build_plan(program)
        env = Environment(program, flow_inputs())
        marker = ShadowMarker(
            {name: env.array_size(name) for name in plan.tested_arrays},
            granularity=granularity,
            eager=granularity is Granularity.ITERATION,
        )
        run = run_doall(
            program, plan.loop, env, plan, 4, marker=marker, engine=engine
        )
        return run, marker

    @pytest.mark.parametrize(
        "granularity", [Granularity.ITERATION, Granularity.PROCESSOR]
    )
    def test_abort_state_matches_walker(self, granularity):
        walk, walk_marker = self._doall("walk", granularity)
        fast, fast_marker = self._doall("compiled", granularity)

        # Iteration-wise eager marking aborts mid-doall; processor-wise
        # disables eager checks, so the full doall runs under both.
        assert walk.aborted == (granularity is Granularity.ITERATION)
        assert fast.aborted == walk.aborted
        assert fast.executed_iterations == walk.executed_iterations
        # The partial iteration's bracketing was discarded identically:
        # unexecuted (and aborted) positions hold default IterationCosts.
        assert fast.iteration_costs == walk.iteration_costs

        assert walk_marker.shadows.keys() == fast_marker.shadows.keys()
        for name, ws in walk_marker.shadows.items():
            fs = fast_marker.shadows[name]
            assert fs.tw == ws.tw
            for field in ("w", "r", "np_", "nx", "redux_touched", "multi_w"):
                np.testing.assert_array_equal(
                    getattr(fs, field), getattr(ws, field), err_msg=f"{name}.{field}"
                )
