"""Runtime edge cases: strides, negative steps, multiple loops, min/max
reductions through temporaries."""

import numpy as np


from tests.conftest import speculative_vs_serial


class TestStridedLoops:
    def test_strided_disjoint_regions_pass(self):
        # Stride 2: writes on odd offsets of the low half, reads in the
        # untouched high half — a doall the compiler can't see.
        source = (
            "program p\n  integer k, nk, ia, ib, is\n  real data(256), c1, c2\n"
            "  do k = 1, nk\n"
            "    data(ia + (k - 1) * is) = data(ia + (k - 1) * is) * c1"
            " + data(ib + (k - 1) * is) * c2\n"
            "  end do\nend\n"
        )
        inputs = {
            "nk": 40, "ia": 1, "ib": 129, "is": 2, "c1": 0.5, "c2": 0.25,
            "data": np.arange(256.0),
        }
        report = speculative_vs_serial(source, inputs, arrays=["data"])
        assert report.passed

    def test_interleaved_strided_regions_with_flow_fail(self):
        # Stride 2, reads trailing the writes by one iteration: flow deps.
        source = (
            "program p\n  integer k, nk, ia, ib, is\n  real data(64)\n"
            "  do k = 1, nk\n"
            "    data(ia + (k - 1) * is) = data(ib + (k - 1) * is) + 1.0\n"
            "  end do\nend\n"
        )
        inputs = {"nk": 20, "ia": 3, "ib": 1, "is": 2,
                  "data": np.arange(64.0)}
        report = speculative_vs_serial(source, inputs, arrays=["data"])
        assert not report.passed


class TestNegativeStepLoops:
    SOURCE = (
        "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
        "  do i = n, 1, -1\n    a(idx(i)) = v(i) * 2.0\n  end do\nend\n"
    )

    def test_descending_doall_passes(self):
        report = speculative_vs_serial(
            self.SOURCE,
            {"n": 8, "idx": np.array([3, 1, 4, 2, 8, 6, 5, 7]), "v": np.arange(8.0)},
            arrays=["a"],
        )
        assert report.passed

    def test_descending_output_dependences_respect_serial_order(self):
        # idx hits element 5 twice; in a descending loop the *lower* i
        # executes later and must win.
        report = speculative_vs_serial(
            self.SOURCE,
            {"n": 8, "idx": np.array([5, 1, 4, 2, 5, 6, 3, 7]), "v": np.arange(8.0)},
            arrays=["a"],
        )
        assert report.passed

    def test_descending_flow_dependence_fails(self):
        source = (
            "program p\n  integer i, n, w(8), r(8)\n  real a(16), v(8)\n"
            "  do i = n, 1, -1\n    a(w(i)) = a(r(i)) + v(i)\n  end do\nend\n"
        )
        # Serial order is i = 8..1: iteration i reads what i+1 wrote.
        w = np.arange(1, 9)
        r = np.concatenate((w[1:], [9]))
        report = speculative_vs_serial(
            source, {"n": 8, "w": w, "r": r, "v": np.arange(8.0)}, arrays=["a"]
        )
        assert not report.passed


class TestMultipleTopLevelLoops:
    SOURCE = (
        "program p\n  integer i, n, idx(8)\n  real a(8), b(8), v(8)\n"
        "  do i = 1, n\n    a(idx(i)) = v(i)\n  end do\n"
        "  do i = 1, n\n    b(i) = a(i) * 2.0\n  end do\nend\n"
    )

    def test_first_loop_is_target_second_runs_after(self):
        inputs = {"n": 8, "idx": np.arange(8, 0, -1), "v": np.arange(8.0)}
        report = speculative_vs_serial(self.SOURCE, inputs, arrays=["a", "b"])
        assert report.passed
        # The teardown loop consumed the speculative loop's results.
        assert report.env.arrays["b"].sum() > 0


class TestMinMaxReductions:
    def test_min_reduction_through_temporary(self):
        source = (
            "program p\n  integer i, n, idx(8)\n  real lo(4), v(8), t\n"
            "  do i = 1, n\n    t = min(lo(idx(i)), v(i))\n"
            "    lo(idx(i)) = t\n  end do\nend\n"
        )
        inputs = {
            "n": 8,
            "idx": np.array([1, 2, 1, 3, 2, 1, 4, 4]),
            "v": np.array([5.0, -1.0, 2.0, 7.0, 0.5, -3.0, 9.0, 1.0]),
            "lo": np.full(4, 100.0),
        }
        report = speculative_vs_serial(source, inputs, arrays=["lo"])
        assert report.passed
        assert report.test_result.details["lo"].reduction_elements > 0

    def test_max_reduction_direct(self):
        source = (
            "program p\n  integer i, n, idx(8)\n  real hi(4), v(8)\n"
            "  do i = 1, n\n    hi(idx(i)) = max(hi(idx(i)), v(i))\n  end do\nend\n"
        )
        inputs = {
            "n": 8,
            "idx": np.array([1, 2, 1, 3, 2, 1, 4, 4]),
            "v": np.array([5.0, -1.0, 2.0, 7.0, 0.5, -3.0, 9.0, 1.0]),
            "hi": np.full(4, -100.0),
        }
        report = speculative_vs_serial(source, inputs, arrays=["hi"])
        assert report.passed

    def test_product_reduction_through_branches(self):
        source = (
            "program p\n  integer i, n, idx(8), gate(8)\n  real w(4), v(8), t\n"
            "  do i = 1, n\n"
            "    if (gate(i) == 1) then\n      t = w(idx(i)) * v(i)\n"
            "    else\n      t = w(idx(i)) * 0.5\n    end if\n"
            "    w(idx(i)) = t\n  end do\nend\n"
        )
        inputs = {
            "n": 8,
            "idx": np.array([1, 2, 1, 3, 2, 1, 4, 4]),
            "gate": np.array([1, 0, 1, 1, 0, 0, 1, 0]),
            "v": np.linspace(0.5, 2.0, 8),
            "w": np.ones(4),
        }
        report = speculative_vs_serial(source, inputs, arrays=["w"])
        assert report.passed


class TestEmptyAndTinyLoops:
    def test_zero_trip_loop_passes_trivially(self):
        source = (
            "program p\n  integer i, n, idx(4)\n  real a(4)\n"
            "  do i = 1, n\n    a(idx(i)) = 1.0\n  end do\nend\n"
        )
        report = speculative_vs_serial(
            source, {"n": 0, "idx": np.arange(1, 5)}, arrays=["a"]
        )
        assert report.passed

    def test_single_iteration_loop(self):
        source = (
            "program p\n  integer i, n, idx(4)\n  real a(4)\n"
            "  do i = 1, n\n    a(idx(i)) = a(idx(i)) + 1.0\n  end do\nend\n"
        )
        report = speculative_vs_serial(
            source, {"n": 1, "idx": np.arange(1, 5)}, arrays=["a"]
        )
        assert report.passed

    def test_more_procs_than_iterations(self):
        source = (
            "program p\n  integer i, n, idx(4)\n  real a(4), v(4)\n"
            "  do i = 1, n\n    a(idx(i)) = v(i)\n  end do\nend\n"
        )
        report = speculative_vs_serial(
            source,
            {"n": 3, "idx": np.array([2, 3, 1, 4]), "v": np.arange(4.0)},
            procs=8,
            arrays=["a"],
        )
        assert report.passed
