"""The execution-engine registry, planner and ``auto`` engine.

Covers the registry seam itself (registration, capability queries,
unknown-name errors, fallback-chain walks, serial substitution), the
``EnginePlanner`` policy on the paper workloads, and the ``auto``
engine's contract: bit-identical to the engine it picks, with the
per-loop decision and its reason recorded on the outcome and report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpeculationError
from repro.machine.costmodel import fx80
from repro.runtime.engines import (
    DEFAULT_ENGINE,
    EngineCaps,
    EngineRegistry,
    ExecutionEngine,
    MIN_VECTOR_TRIP,
    UnknownEngineError,
    engine_names,
    get_engine,
    registry,
    render_engine_table,
)
from repro.runtime.engines.planner import EnginePlanner
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.serial import run_serial
from repro.workloads.bdna import build_bdna
from repro.workloads.mdg import build_mdg
from repro.workloads.ocean import build_ocean
from repro.workloads.spice import build_spice
from repro.workloads.track import build_track

from tests.runtime.test_vectorized_engine import (
    _assert_outcomes_identical,
    _speculative,
)


@pytest.fixture(autouse=True)
def _cold_kernel_cache():
    """Planner picks consult the jit warm-up ledger; keep it cold here
    so the expected `vectorized` decisions hold even on hosts where
    Numba is installed and another test warmed a kernel."""
    from repro.runtime.profile import kernel_cache

    kernel_cache.clear()
    yield
    kernel_cache.clear()


class _StubEngine(ExecutionEngine):
    name = "stub"
    caps = EngineCaps(supports_serial=True)
    summary = "stub"
    guarantee = "stub"

    def execute_doall(self, ctx):  # pragma: no cover - never driven
        raise NotImplementedError


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert engine_names() == [
            "auto", "compiled", "doacross", "jit", "parallel", "vectorized",
            "walk"
        ]
        assert DEFAULT_ENGINE in engine_names()

    def test_register_and_get(self):
        fresh = EngineRegistry()
        engine = _StubEngine()
        assert fresh.register(engine) is engine
        assert fresh.get("stub") is engine

    def test_duplicate_registration_rejected(self):
        fresh = EngineRegistry()
        fresh.register(_StubEngine())
        with pytest.raises(SpeculationError, match="already registered"):
            fresh.register(_StubEngine())

    def test_unnamed_engine_rejected(self):
        class Nameless(_StubEngine):
            name = ""

        with pytest.raises(SpeculationError, match="declare a name"):
            EngineRegistry().register(Nameless())

    def test_unknown_name_lists_registered_engines(self):
        with pytest.raises(UnknownEngineError) as excinfo:
            registry.get("turbo")
        message = str(excinfo.value)
        for name in engine_names():
            assert name in message

    def test_capability_queries(self):
        assert get_engine("walk").caps.supports_serial
        assert get_engine("compiled").caps.supports_serial
        assert not get_engine("vectorized").caps.supports_serial
        assert get_engine("vectorized").caps.whole_block
        assert get_engine("vectorized").caps.needs_classifier
        assert get_engine("jit").caps.whole_block
        assert get_engine("jit").caps.needs_classifier
        assert not get_engine("jit").caps.supports_serial
        assert get_engine("parallel").caps.requires_workers
        assert get_engine("auto").caps.planner
        assert get_engine("doacross").caps.recovery
        assert not get_engine("doacross").caps.supports_serial
        assert not any(
            get_engine(name).caps.recovery
            for name in engine_names()
            if name != "doacross"
        )

    def test_fallback_chain_walk(self):
        assert registry.fallback_chain("vectorized") == [
            "vectorized", "compiled"
        ]
        assert registry.fallback_chain("jit") == [
            "jit", "vectorized", "compiled"
        ]
        assert registry.fallback_chain("compiled") == ["compiled"]
        assert registry.fallback_chain("auto") == ["auto", "compiled"]
        assert registry.fallback_chain("doacross") == ["doacross", "compiled"]

    def test_fallback_cycle_rejected(self):
        fresh = EngineRegistry()

        class Cyclic(_StubEngine):
            name = "cyclic"
            caps = EngineCaps(fallback="cyclic")

        fresh.register(Cyclic())
        with pytest.raises(SpeculationError, match="cycle"):
            fresh.fallback_chain("cyclic")

    def test_serial_engine_for_serial_capable(self):
        for name in ("walk", "compiled"):
            assert registry.serial_engine_for(name) == (name, None)

    @pytest.mark.parametrize(
        "name", ["parallel", "vectorized", "jit", "auto", "doacross"]
    )
    def test_serial_engine_for_substitutes(self, name):
        serial_name, reason = registry.serial_engine_for(name)
        assert serial_name == "compiled"
        assert name in reason and "compiled" in reason

    def test_needs_worker_pool(self):
        assert registry.needs_worker_pool("parallel", None)
        assert registry.needs_worker_pool("parallel", 2)
        assert registry.needs_worker_pool("vectorized", 2)
        assert not registry.needs_worker_pool("vectorized", None)
        assert registry.needs_worker_pool("jit", 2)
        assert not registry.needs_worker_pool("jit", None)
        assert registry.needs_worker_pool("auto", 2)
        assert not registry.needs_worker_pool("auto", None)
        assert not registry.needs_worker_pool("compiled", 3)
        assert not registry.needs_worker_pool("doacross", 3)

    def test_render_engine_table_covers_all_engines(self):
        table = render_engine_table()
        for name in engine_names():
            assert f"`{name}`" in table
        assert "(default)" in table


class TestValidation:
    def test_run_config_rejects_unknown_engine(self):
        with pytest.raises(UnknownEngineError, match="registered engines"):
            RunConfig(engine="turbo")

    def test_run_config_accepts_registered_engines(self):
        for name in engine_names():
            assert RunConfig(engine=name).engine == name

    def test_cli_choices_derive_from_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        run_action = next(
            a
            for a in parser._subparsers._group_actions[0].choices["run"]._actions
            if "--engine" in a.option_strings
        )
        assert list(run_action.choices) == engine_names()

    def test_serial_run_records_substitution(self):
        workload = build_bdna(n=40)
        runner = LoopRunner(workload.program(), workload.inputs)
        substituted = runner.serial_run(fx80(), "parallel")
        assert substituted.engine == "compiled"
        assert "parallel" in substituted.engine_substitution
        direct = runner.serial_run(fx80(), "compiled")
        assert direct.engine_substitution is None
        assert direct.loop_time == substituted.loop_time

    def test_run_serial_substitutes_and_records(self):
        workload = build_bdna(n=40)
        run = run_serial(
            workload.program(), workload.inputs, fx80(), engine="vectorized"
        )
        assert run.engine == "compiled"
        assert "vectorized" in run.engine_substitution


class TestPlanner:
    def _plan(self, workload, *, trip_count, workers=None):
        from repro.analysis.instrument import build_plan
        from repro.dsl.parser import parse

        program = parse(workload.source)
        plan = build_plan(program)
        return EnginePlanner().plan(
            program, plan.loop, plan, trip_count=trip_count, workers=workers
        )

    @pytest.mark.parametrize(
        "build",
        [
            pytest.param(lambda: build_bdna(n=120), id="bdna"),
            pytest.param(lambda: build_mdg(n=80), id="mdg"),
            pytest.param(lambda: build_ocean(nk=150), id="ocean"),
        ],
    )
    def test_classifier_accepted_loops_pick_vectorized(self, build):
        decision = self._plan(build(), trip_count=120)
        assert decision.engine == "vectorized"
        assert "classifier accepted" in decision.reason

    @pytest.mark.parametrize(
        "build",
        [
            pytest.param(lambda: build_spice(n=80), id="spice"),
            pytest.param(lambda: build_track(n=150), id="track"),
        ],
    )
    def test_classifier_rejected_loops_pick_compiled(self, build):
        decision = self._plan(build(), trip_count=150)
        assert decision.engine == "compiled"
        assert "rejected" in decision.reason

    def test_small_trip_count_stays_compiled(self):
        decision = self._plan(
            build_bdna(n=40), trip_count=MIN_VECTOR_TRIP - 1
        )
        assert decision.engine == "compiled"
        assert "below" in decision.reason

    def test_rejected_loop_with_workers_picks_parallel(self):
        decision = self._plan(build_spice(n=80), trip_count=80, workers=2)
        assert decision.engine == "parallel"
        assert "2 workers" in decision.reason


class TestAutoEngine:
    """``auto`` is bit-identical to the engine it picks, with the
    decision recorded — on the run, the outcome and the report."""

    def test_bdna_picks_vectorized_bit_identically(self):
        ref, ref_env = _speculative(build_bdna(n=60), "vectorized")
        auto, auto_env = _speculative(build_bdna(n=60), "auto")
        assert auto.run.engine_used == "vectorized"
        assert "classifier accepted" in auto.run.engine_decision
        _assert_outcomes_identical(ref, ref_env, auto, auto_env)

    def test_spice_picks_compiled_bit_identically(self):
        ref, ref_env = _speculative(build_spice(n=80), "compiled")
        auto, auto_env = _speculative(build_spice(n=80), "auto")
        assert auto.run.engine_used == "compiled"
        assert "rejected" in auto.run.engine_decision
        # An explicit pick of compiled is a decision, not a degradation.
        assert auto.run.fallback_reason is None
        _assert_outcomes_identical(ref, ref_env, auto, auto_env)

    def test_failing_loop_parity(self):
        ref, ref_env = _speculative(
            build_ocean(nk=150, overlap=True), "vectorized"
        )
        auto, auto_env = _speculative(build_ocean(nk=150, overlap=True), "auto")
        assert not auto.result.passed
        _assert_outcomes_identical(ref, ref_env, auto, auto_env)

    def test_eager_abort_parity(self):
        ref, ref_env = _speculative(
            build_ocean(nk=150, overlap=True), "vectorized", eager=True
        )
        auto, auto_env = _speculative(
            build_ocean(nk=150, overlap=True), "auto", eager=True
        )
        assert auto.run.aborted
        _assert_outcomes_identical(ref, ref_env, auto, auto_env)

    def test_worker_sharded_parity(self):
        ref, ref_env = _speculative(build_bdna(n=60), "vectorized", workers=2)
        auto, auto_env = _speculative(build_bdna(n=60), "auto", workers=2)
        assert auto.run.engine_used == "vectorized"
        _assert_outcomes_identical(ref, ref_env, auto, auto_env)

    def _report(self, build, engine, **config_kwargs):
        workload = build()
        runner = LoopRunner(workload.program(), workload.inputs)
        cfg = RunConfig(
            model=fx80().with_procs(8), engine=engine, **config_kwargs
        )
        strategy = (
            Strategy.STRIPPED
            if config_kwargs.get("strip_size")
            else Strategy.SPECULATIVE
        )
        return runner.run(strategy, cfg)

    def test_stripped_parity_and_per_strip_planning(self):
        build = lambda: build_bdna(n=60)  # noqa: E731
        ref = self._report(build, "vectorized", strip_size=16)
        auto = self._report(build, "auto", strip_size=16)
        assert auto.engine_used == "vectorized"
        assert auto.times.as_dict() == ref.times.as_dict()
        assert auto.stats == ref.stats
        for name in ref.env.arrays:
            np.testing.assert_array_equal(
                ref.env.arrays[name], auto.env.arrays[name]
            )

    def test_decision_recorded_on_report(self):
        report = self._report(lambda: build_bdna(n=60), "auto")
        assert report.engine_used == "vectorized"
        assert len(report.engine_decisions) == 1
        loop_key, reason = report.engine_decisions[0]
        assert loop_key
        assert "classifier accepted" in reason
        assert report.fallbacks == []

    def test_explicit_engine_records_no_decision(self):
        report = self._report(lambda: build_bdna(n=60), "vectorized")
        assert report.engine_decisions == []

    def test_rejected_pick_recorded_on_report(self):
        report = self._report(lambda: build_spice(n=80), "auto")
        assert report.engine_used == "compiled"
        assert len(report.engine_decisions) == 1
        assert "rejected" in report.engine_decisions[0][1]
