"""Inspector/executor strategy tests."""

import numpy as np
import pytest

from repro.errors import InspectorNotExtractable
from repro.machine.costmodel import CostModel
from repro.runtime.orchestrator import RunConfig, Strategy

from tests.conftest import assert_env_matches, make_runner

PERMUTED = (
    "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
    "  do i = 1, n\n    a(idx(i)) = v(i) * 2.0\n  end do\nend\n"
)
PERMUTED_INPUTS = {
    "n": 8, "idx": np.array([3, 1, 4, 2, 8, 6, 5, 7]), "v": np.arange(8.0),
}


def run_inspector(source, inputs, procs=4):
    runner = make_runner(source, inputs)
    config = RunConfig(model=CostModel(num_procs=procs))
    serial = runner.serial_run(config.model)
    report = runner.run(Strategy.INSPECTOR, config)
    return runner, serial, report


class TestPassingLoops:
    def test_permuted_writes_pass_and_match_serial(self):
        _, serial, report = run_inspector(PERMUTED, dict(PERMUTED_INPUTS))
        assert report.passed
        assert_env_matches(report.env, serial.env, arrays=["a"])

    def test_no_checkpoint_phase(self):
        _, _, report = run_inspector(PERMUTED, dict(PERMUTED_INPUTS))
        assert report.times.checkpoint == 0.0
        assert report.times.restore == 0.0

    def test_inspector_phase_timed(self):
        _, _, report = run_inspector(PERMUTED, dict(PERMUTED_INPUTS))
        assert report.times.inspector > 0.0
        assert report.times.body > 0.0

    def test_inspector_cheaper_than_body(self):
        # The inspector executes only the address slice: for a loop with
        # real arithmetic it must cost less than the executor's body
        # (compared at a size where per-iteration work dominates the
        # fixed barrier costs).
        n = 400
        rng = np.random.default_rng(0)
        source = (
            f"program p\n  integer i, n, idx({n})\n  real a({n}), v({n}), t\n"
            "  do i = 1, n\n    t = v(i) * v(i) + sqrt(abs(v(i)) + 1.0)\n"
            "    a(idx(i)) = t * 0.5 + exp(0.0 - v(i) * v(i))\n  end do\nend\n"
        )
        inputs = {"n": n, "idx": rng.permutation(n) + 1, "v": rng.normal(size=n)}
        _, _, report = run_inspector(source, inputs)
        assert report.times.inspector < report.times.body

    def test_reduction_loop_via_inspector(self):
        source = (
            "program p\n  integer i, n, idx(8)\n  real f(4), v(8)\n"
            "  do i = 1, n\n    f(idx(i)) = f(idx(i)) + v(i)\n  end do\nend\n"
        )
        inputs = {"n": 8, "idx": np.array([1, 2, 1, 3, 2, 1, 4, 4]), "v": np.arange(8.0)}
        _, serial, report = run_inspector(source, inputs)
        assert report.passed
        assert_env_matches(report.env, serial.env, arrays=["f"])

    def test_work_array_recomputed_in_scratch(self):
        # The BDNA pattern: addresses flow through a privatizable work
        # array; the inspector recomputes it without touching shared state.
        source = (
            "program p\n  integer i, j, n, m, ind(4), nbr(8)\n  real a(16), v(16)\n"
            "  do i = 1, n\n    do j = 1, m\n      ind(j) = nbr(j) + i\n"
            "      a(ind(j)) = v(ind(j)) * 2.0\n    end do\n  end do\nend\n"
        )
        inputs = {
            "n": 4, "m": 2, "nbr": np.array([0, 4, 0, 0, 0, 0, 0, 0]),
            "v": np.arange(16.0),
        }
        runner, serial, report = run_inspector(source, inputs)
        assert "ind" in runner.plan.inspector_recompute_arrays
        # ind values must be identical to serial afterwards (the executor
        # recomputes them for real).
        assert_env_matches(report.env, serial.env, arrays=["a", "ind"])


class TestFailingLoops:
    def test_flow_dependence_runs_serial_without_rollback(self):
        source = (
            "program p\n  integer i, n, w(6), r(6)\n  real a(12), v(6)\n"
            "  do i = 1, n\n    a(w(i)) = a(r(i)) + v(i)\n  end do\nend\n"
        )
        inputs = {
            "n": 6,
            "w": np.array([1, 2, 3, 4, 5, 6]),
            "r": np.array([7, 1, 8, 9, 3, 10]),
            "v": np.arange(6.0),
        }
        runner, serial, report = run_inspector(source, inputs)
        assert not report.passed
        assert report.times.restore == 0.0  # nothing to roll back
        assert report.times.serial_rerun > 0.0
        assert_env_matches(report.env, serial.env, arrays=["a"])


class TestExtractability:
    def test_track_like_loop_refuses_inspector(self):
        source = (
            "program p\n  integer i, k, n, iw(16)\n  real out(16)\n"
            "  do i = 1, n\n    k = iw(n + i)\n    iw(i) = k\n"
            "    out(k) = 1.0\n  end do\nend\n"
        )
        iw = np.zeros(16, dtype=np.int64)
        iw[8:] = np.arange(1, 9)
        runner = make_runner(source, {"n": 8, "iw": iw})
        with pytest.raises(InspectorNotExtractable):
            runner.run(Strategy.INSPECTOR, RunConfig(model=CostModel(num_procs=2)))
