"""The jit engine: parity, graceful degradation, planner preference.

The engine contract is the vectorized contract verbatim — bit-identical
outcomes on every observable — with two additions pinned here: when the
kernel set cannot load, the dispatcher degrades down the declared chain
(``jit -> vectorized -> compiled``) with the reason recorded on the
report, and the warm-up ledger charges the kernel compile exactly once
per dispatch key, surfaced as ``jit_compile_s`` / ``wall.jit_compile``.
Registration, capabilities and the fallback-chain walk are covered in
``test_engines``; these tests run the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.jit_kernels as jit_kernels
from repro.core.jit_kernels import load_kernels
from repro.runtime.profile import kernel_cache
from repro.machine.costmodel import fx80
from repro.runtime.engines.planner import EnginePlanner
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads.bdna import build_bdna
from repro.workloads.mdg import build_mdg
from repro.workloads.ocean import build_ocean

from tests.runtime.test_vectorized_engine import (
    _assert_outcomes_identical,
    _speculative,
)

WORKLOADS = [
    pytest.param(lambda: build_bdna(n=120), id="bdna"),
    pytest.param(lambda: build_mdg(n=80), id="mdg"),
    pytest.param(lambda: build_ocean(nk=150), id="ocean"),
    pytest.param(lambda: build_ocean(nk=150, overlap=True), id="ocean-fail"),
]


@pytest.fixture
def python_kernels():
    """Force the uncompiled kernel bodies so the engine runs its full
    native path on hosts without Numba, with a cold warm-up ledger."""
    jit_kernels.force_python_kernels = True
    jit_kernels.reset_for_tests()
    kernel_cache.clear()
    try:
        yield load_kernels()
    finally:
        jit_kernels.force_python_kernels = False
        jit_kernels.reset_for_tests()
        kernel_cache.clear()


class TestParity:
    @pytest.mark.parametrize("build", WORKLOADS)
    @pytest.mark.parametrize("eager", [False, True], ids=["lazy", "eager"])
    def test_bit_identical_to_vectorized(self, python_kernels, build, eager):
        ref, ref_env = _speculative(build(), "vectorized", eager=eager)
        jit, jit_env = _speculative(build(), "jit", eager=eager)
        _assert_outcomes_identical(ref, ref_env, jit, jit_env)

    def test_committed_block_reports_jit_engine(self, python_kernels):
        jit, _env = _speculative(build_bdna(n=60), "jit")
        assert jit.run.engine_used == "jit"
        assert jit.run.fallback_reason is None

    def test_worker_sharded_parity(self, python_kernels):
        ref, ref_env = _speculative(build_bdna(n=60), "vectorized", workers=2)
        jit, jit_env = _speculative(build_bdna(n=60), "jit", workers=2)
        assert jit.run.engine_used == "jit"
        _assert_outcomes_identical(ref, ref_env, jit, jit_env)

    def test_stripped_parity(self, python_kernels):
        def report(engine):
            workload = build_bdna(n=60)
            runner = LoopRunner(workload.program(), workload.inputs)
            cfg = RunConfig(
                model=fx80().with_procs(8), engine=engine, strip_size=16
            )
            return runner.run(Strategy.STRIPPED, cfg)

        ref = report("vectorized")
        jit = report("jit")
        assert jit.engine_used == "jit"
        assert jit.times.as_dict() == ref.times.as_dict()
        assert jit.stats == ref.stats
        for name in ref.env.arrays:
            np.testing.assert_array_equal(
                ref.env.arrays[name], jit.env.arrays[name], err_msg=name
            )


class TestDegradation:
    def test_numba_absent_falls_back_with_reason(self):
        try:
            import numba  # noqa: F401
            pytest.skip("Numba installed: the unavailable path cannot run")
        except ImportError:
            pass
        jit_kernels.reset_for_tests()
        workload = build_bdna(n=60)
        runner = LoopRunner(workload.program(), workload.inputs)
        report = runner.run(
            Strategy.SPECULATIVE,
            RunConfig(model=fx80().with_procs(8), engine="jit"),
        )
        # Degraded one step down the chain, reason on the report.
        assert report.engine_used == "vectorized"
        assert len(report.fallbacks) == 1
        assert "native kernels unavailable" in report.fallbacks[0][1]
        assert "numba" in report.fallbacks[0][1]

    def test_degraded_run_matches_vectorized(self):
        try:
            import numba  # noqa: F401
            pytest.skip("Numba installed: the unavailable path cannot run")
        except ImportError:
            pass
        jit_kernels.reset_for_tests()
        ref, ref_env = _speculative(build_bdna(n=120), "vectorized")
        jit, jit_env = _speculative(build_bdna(n=120), "jit")
        _assert_outcomes_identical(ref, ref_env, jit, jit_env)


class TestWarmUpLedger:
    def test_compile_charged_once_per_key(self, python_kernels):
        first, _ = _speculative(build_bdna(n=60), "jit")
        assert first.run.jit_compile_s > 0.0
        assert first.wall.jit_compile == first.run.jit_compile_s
        second, _ = _speculative(build_bdna(n=60), "jit")
        assert second.run.jit_compile_s == 0.0
        assert second.wall.jit_compile == 0.0

    def test_distinct_loops_get_distinct_keys(self, python_kernels):
        _speculative(build_bdna(n=60), "jit")
        other, _ = _speculative(build_mdg(n=80), "jit")
        assert other.run.jit_compile_s > 0.0

    def test_vectorized_runs_never_charge_compile(self, python_kernels):
        ref, _ = _speculative(build_bdna(n=60), "vectorized")
        assert ref.run.jit_compile_s == 0.0
        assert ref.wall.jit_compile == 0.0


class TestPlannerPreference:
    def _plan(self, workload, *, trip_count):
        from repro.analysis.instrument import build_plan
        from repro.dsl.parser import parse

        program = parse(workload.source)
        plan = build_plan(program)
        return EnginePlanner().plan(
            program, plan.loop, plan, trip_count=trip_count, workers=None
        )

    def test_cold_kernels_keep_vectorized(self, python_kernels):
        decision = self._plan(build_bdna(n=120), trip_count=120)
        assert decision.engine == "vectorized"

    def test_warm_kernels_prefer_jit(self, python_kernels):
        kernel_cache.ensure("warm-probe", python_kernels)
        decision = self._plan(build_bdna(n=120), trip_count=120)
        assert decision.engine == "jit"
        assert "classifier accepted" in decision.reason
        assert "warm" in decision.reason

    def test_auto_runs_jit_bit_identically_when_warm(self, python_kernels):
        ref, ref_env = _speculative(build_bdna(n=120), "vectorized")
        kernel_cache.ensure("warm-probe", python_kernels)
        auto, auto_env = _speculative(build_bdna(n=120), "auto")
        assert auto.run.engine_used == "jit"
        assert "classifier accepted" in auto.run.engine_decision
        _assert_outcomes_identical(ref, ref_env, auto, auto_env)
