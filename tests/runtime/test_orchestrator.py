"""LoopRunner orchestration tests: strategies, refusal, schedule reuse."""

import numpy as np
import pytest

from repro.machine.costmodel import CostModel
from repro.runtime.orchestrator import RunConfig, Strategy

from tests.conftest import assert_env_matches, make_runner

PERMUTED = (
    "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
    "  do i = 1, n\n    a(idx(i)) = v(i) * 2.0\n  end do\nend\n"
)
PERMUTED_INPUTS = {
    "n": 8, "idx": np.array([3, 1, 4, 2, 8, 6, 5, 7]), "v": np.arange(8.0),
}


def config(procs=4, **kw):
    return RunConfig(model=CostModel(num_procs=procs), **kw)


class TestStrategies:
    def test_serial_strategy(self):
        runner = make_runner(PERMUTED, dict(PERMUTED_INPUTS))
        report = runner.run(Strategy.SERIAL, config())
        assert report.strategy == "serial"
        assert report.speedup == pytest.approx(1.0)

    def test_all_strategies_agree_on_state(self):
        results = {}
        for strategy in (Strategy.SERIAL, Strategy.SPECULATIVE, Strategy.INSPECTOR):
            runner = make_runner(PERMUTED, dict(PERMUTED_INPUTS))
            results[strategy] = runner.run(strategy, config())
        base = results[Strategy.SERIAL].env
        for strategy in (Strategy.SPECULATIVE, Strategy.INSPECTOR):
            assert_env_matches(results[strategy].env, base, arrays=["a"])

    def test_describe_is_informative(self):
        runner = make_runner(PERMUTED, dict(PERMUTED_INPUTS))
        text = runner.run(Strategy.SPECULATIVE, config()).describe()
        assert "speculative" in text
        assert "speedup" in text


class TestCarriedScalarRefusal:
    SOURCE = (
        "program p\n  integer i, n\n  real s, a(8)\n"
        "  do i = 1, n\n    a(i) = s\n    s = a(i) + 1.0\n  end do\nend\n"
    )

    def test_refuses_speculation(self):
        runner = make_runner(self.SOURCE, {"n": 8, "s": 1.0})
        report = runner.run(Strategy.SPECULATIVE, config())
        assert report.strategy == "serial"
        assert report.stats.get("refused") == 1.0

    def test_state_still_correct(self):
        runner = make_runner(self.SOURCE, {"n": 8, "s": 1.0})
        serial = runner.serial_run(CostModel(num_procs=4))
        report = runner.run(Strategy.SPECULATIVE, config())
        assert_env_matches(report.env, serial.env, arrays=["a"], scalars=["s"])


class TestScheduleReuse:
    def test_second_invocation_reuses(self):
        runner = make_runner(PERMUTED, dict(PERMUTED_INPUTS))
        cfg = config(use_schedule_cache=True)
        first = runner.run(Strategy.SPECULATIVE, cfg)
        second = runner.run(Strategy.SPECULATIVE, cfg)
        assert not first.reused_schedule
        assert second.reused_schedule
        assert second.loop_time < first.loop_time
        assert second.times.analysis == 0.0

    def test_reused_run_still_correct(self):
        runner = make_runner(PERMUTED, dict(PERMUTED_INPUTS))
        cfg = config(use_schedule_cache=True)
        runner.run(Strategy.SPECULATIVE, cfg)
        serial = runner.serial_run(cfg.model)
        second = runner.run(Strategy.SPECULATIVE, cfg)
        assert_env_matches(second.env, serial.env, arrays=["a"])

    def test_failed_result_cached_too(self):
        source = (
            "program p\n  integer i, n, w(6), r(6)\n  real a(12), v(6)\n"
            "  do i = 1, n\n    a(w(i)) = a(r(i)) + v(i)\n  end do\nend\n"
        )
        inputs = {
            "n": 6,
            "w": np.array([1, 2, 3, 4, 5, 6]),
            "r": np.array([7, 1, 8, 9, 3, 10]),
            "v": np.arange(6.0),
        }
        runner = make_runner(source, inputs)
        cfg = config(use_schedule_cache=True)
        first = runner.run(Strategy.SPECULATIVE, cfg)
        second = runner.run(Strategy.SPECULATIVE, cfg)
        assert not first.passed
        assert second.reused_schedule
        assert not second.passed
        # A cached failure goes straight to serial: no checkpoint at all.
        assert second.times.checkpoint == 0.0

    def test_no_reuse_across_pattern_change(self):
        runner = make_runner(PERMUTED, dict(PERMUTED_INPUTS))
        cfg = config(use_schedule_cache=True)
        runner.run(Strategy.SPECULATIVE, cfg)
        runner.inputs["idx"] = np.arange(8, 0, -1)
        report = runner.run(Strategy.SPECULATIVE, cfg)
        assert not report.reused_schedule


class TestSerialRunCaching:
    def test_serial_run_cached_per_machine(self):
        runner = make_runner(PERMUTED, dict(PERMUTED_INPUTS))
        model = CostModel(num_procs=4)
        first = runner.serial_run(model)
        second = runner.serial_run(model)
        assert first is second
