"""Cross-engine parity and teardown tests for the multiprocess backend.

The parallel engine must be observationally identical to the compiled
single-process engine: same LRPD verdicts, same shadow contents
(including ``tw``/``tm`` and the directional stamps), same simulated
times and stats, and the same post-protocol memory — on paper loops,
failing loops and strip-mined runs alike.  Runs cut short by eager
detection abort at a worker-local point, so there only the verdict and
the post-protocol environment are comparable (see
:mod:`repro.runtime.parallel_backend`).

Teardown is part of the contract: no ``/dev/shm`` segment may survive a
pool, whether the run passed, aborted eagerly, or died on a forwarded
worker exception.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.analysis.instrument import build_plan
from repro.core.shadow import Granularity, ShadowArray, ShadowMarker
from repro.dsl.parser import parse
from repro.errors import InterpError
from repro.interp.env import Environment
from repro.interp.parallel_spec import ShardSpec, ShardTask, execute_shard
from repro.machine.costmodel import fx80
from repro.machine.schedule import ScheduleKind, assign_iterations
from repro.machine.simulator import DoallSimulator
from repro.runtime.doall import run_doall
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.parallel_backend import (
    SEGMENT_PREFIX,
    WorkerPool,
    partition_procs,
    run_parallel_doall,
)
from repro.runtime.speculative import run_speculative
from repro.workloads import PAPER_LOOPS
from repro.workloads.synthetic import build_dependence_injected

#: every analysis-visible ShadowArray buffer (the parity surface).
#: ``_last_write`` is deliberately absent: it is a marking-time scratch
#: stamp (read-coveredness, tw counting) whose final value reflects the
#: executor's interleaving — the emulation's round-robin order vs the
#: merge's serial-order canonicalization — and nothing reads it after
#: the run.
SHADOW_SURFACE = (
    "w", "r", "np_", "nx", "redux_touched", "multi_w",
    "_min_write", "_max_exposed_read", "_min_exposed_read", "_redux_op",
)


def leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def spec_outcome(workload, engine, *, workers=None, procs=8, eager=False):
    """Run the unstripped protocol, returning (outcome, post-loop env)."""
    runner = LoopRunner(workload.program(), workload.inputs)
    env = Environment(runner.program, runner.inputs)
    from repro.interp.interpreter import Interpreter

    Interpreter(runner.program, env, value_based=False).exec_block(runner._before)
    sim = DoallSimulator(fx80().with_procs(procs), ScheduleKind.BLOCK)
    outcome = run_speculative(
        runner.program, runner.loop, env, runner.plan, sim,
        engine=engine, workers=workers, eager=eager,
    )
    return outcome, env


def assert_env_equal(env_a: Environment, env_b: Environment) -> None:
    assert env_a.scalars == env_b.scalars
    assert env_a.arrays.keys() == env_b.arrays.keys()
    for name in env_a.arrays:
        np.testing.assert_array_equal(env_a.arrays[name], env_b.arrays[name])


def assert_shadows_equal(marker_a: ShadowMarker, marker_b: ShadowMarker) -> None:
    assert marker_a.shadows.keys() == marker_b.shadows.keys()
    for name, shadow_a in marker_a.shadows.items():
        shadow_b = marker_b.shadows[name]
        assert shadow_a.tw == shadow_b.tw, name
        assert shadow_a.tm == shadow_b.tm, name
        for fieldname in SHADOW_SURFACE:
            np.testing.assert_array_equal(
                getattr(shadow_a, fieldname), getattr(shadow_b, fieldname),
                err_msg=f"{name}.{fieldname}",
            )


def assert_full_parity(compiled, parallel, env_compiled, env_parallel):
    """Everything observable must match on runs that complete."""
    assert compiled.result == parallel.result
    assert compiled.times == parallel.times
    assert compiled.stats == parallel.stats
    assert compiled.run.aborted == parallel.run.aborted
    assert compiled.run.executed_iterations == parallel.run.executed_iterations
    assert compiled.run.iteration_costs == parallel.run.iteration_costs
    assert compiled.run.assignment == parallel.run.assignment
    assert_shadows_equal(compiled.run.marker, parallel.run.marker)
    assert_env_equal(env_compiled, env_parallel)


# -- parity: paper loops ------------------------------------------------------


@pytest.mark.parametrize(
    "name", ["BDNA_ACTFOR_do240", "MDG_INTERF_do1000", "OCEAN_FTRVMT_do109"]
)
def test_paper_loop_parity(name):
    workload = PAPER_LOOPS[name]()
    compiled, env_c = spec_outcome(workload, "compiled")
    parallel, env_p = spec_outcome(workload, "parallel", workers=3)
    assert compiled.result.passed and parallel.result.passed
    assert_full_parity(compiled, parallel, env_c, env_p)
    assert leaked_segments() == []


def test_copied_out_last_values_match():
    """Dynamic last-value copy-out survives the cross-worker rebuild."""
    workload = PAPER_LOOPS["BDNA_ACTFOR_do240"]()
    compiled, env_c = spec_outcome(workload, "compiled")
    parallel, env_p = spec_outcome(workload, "parallel", workers=4)
    assert compiled.stats["copied_out"] == parallel.stats["copied_out"]
    for name, copies in compiled.run.privates.items():
        other = parallel.run.privates[name]
        np.testing.assert_array_equal(copies.data, other.data, err_msg=name)
        np.testing.assert_array_equal(copies.wstamp, other.wstamp, err_msg=name)


# -- parity: failure and rollback paths ---------------------------------------


def test_failing_loop_full_parity():
    """A failed (non-eager) speculation is still fully bit-identical:
    the doall completes, the analysis fails, rollback + serial rerun."""
    workload = build_dependence_injected(n=80, dep_fraction=0.25)
    compiled, env_c = spec_outcome(workload, "compiled")
    parallel, env_p = spec_outcome(workload, "parallel", workers=2)
    assert not compiled.result.passed and not parallel.result.passed
    assert_full_parity(compiled, parallel, env_c, env_p)
    assert leaked_segments() == []


def test_eager_abort_verdict_and_env_parity():
    """Eager aborts stop at a worker-local point, so the comparable
    surface is the verdict (always a fail, by mark monotonicity under
    the merge) and the rolled-back + serially recomputed memory."""
    workload = build_dependence_injected(n=80, dep_fraction=0.25)
    compiled, env_c = spec_outcome(workload, "compiled", eager=True)
    parallel, env_p = spec_outcome(workload, "parallel", workers=2, eager=True)
    assert compiled.run.aborted and parallel.run.aborted
    assert not compiled.result.passed and not parallel.result.passed
    assert_env_equal(env_c, env_p)
    assert leaked_segments() == []


def test_stripped_strategy_parity():
    """The strip pipeline reuses one pool across strips; every strip's
    outcome, the whole-loop verdict, times, stats and memory match."""
    workload = build_dependence_injected(n=120, dep_fraction=0.1)

    def run(engine, workers=None):
        runner = LoopRunner(workload.program(), workload.inputs)
        return runner.run(
            Strategy.STRIPPED,
            RunConfig(engine=engine, workers=workers, strip_size=25),
        )

    compiled = run("compiled")
    parallel = run("parallel", workers=2)
    assert compiled.passed == parallel.passed
    assert compiled.times == parallel.times
    assert compiled.stats == parallel.stats
    assert [(s.passed, s.aborted, s.iterations) for s in compiled.strips] == [
        (s.passed, s.aborted, s.iterations) for s in parallel.strips
    ]
    assert_env_equal(compiled.env, parallel.env)
    assert leaked_segments() == []


# -- worker-count edges -------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 3, 16])
def test_worker_count_invariance(workers):
    """The shard partition must not be observable: 1 worker, an uneven
    split, and more workers than virtual processors all agree."""
    workload = PAPER_LOOPS["MDG_INTERF_do1000"]()
    compiled, env_c = spec_outcome(workload, "compiled")
    parallel, env_p = spec_outcome(workload, "parallel", workers=workers)
    assert_full_parity(compiled, parallel, env_c, env_p)


def test_partition_procs_contiguous_and_total():
    chunks = partition_procs(8, 3)
    assert [len(c) for c in chunks] == [3, 3, 2]
    assert sorted(p for c in chunks for p in c) == list(range(8))
    assert partition_procs(2, 16) == [[0], [1]]
    with pytest.raises(InterpError):
        partition_procs(8, 0)


# -- in-process shard executor ------------------------------------------------


def _plan_env(workload):
    program = workload.program()
    plan = build_plan(program)
    env = Environment(program, workload.inputs)
    return program, plan, env


def test_execute_shard_matches_emulated_doall():
    """One shard owning *all* virtual processors, run in-process, must
    reproduce the emulated doall's private rows, partials, scalars and
    iteration costs exactly."""
    workload = PAPER_LOOPS["BDNA_ACTFOR_do240"]()
    program, plan, env = _plan_env(workload)
    num_procs = 4

    shadow_sizes = {name: env.array_size(name) for name in plan.tested_arrays}
    marker = ShadowMarker(shadow_sizes)
    reference = run_doall(
        program, plan.loop, env.copy(), plan, num_procs, marker=marker
    )

    spec = ShardSpec.from_plan(program, plan.loop, plan, env, num_procs)
    shard_marker = ShadowMarker(shadow_sizes)
    task = ShardTask(
        values=reference.values,
        assignment=reference.assignment,
        procs=list(range(num_procs)),
        env=env.copy(),
        granularity=Granularity.ITERATION,
    )
    result = execute_shard(spec, task, shard_marker)

    assert not result.aborted
    assert result.executed == reference.executed_iterations
    assert_shadows_equal(marker, shard_marker)
    for name, copies in reference.privates.items():
        for proc in range(num_procs):
            data, wstamp = result.private_rows[name][proc]
            np.testing.assert_array_equal(copies.data[proc], data)
            np.testing.assert_array_equal(copies.wstamp[proc], wstamp)
    for name, partials in reference.partials.items():
        maps = partials.proc_maps()
        for proc in range(num_procs):
            assert maps[proc] == result.partial_maps[name][proc]
    for proc in range(num_procs):
        assert reference.proc_envs[proc].scalars == result.proc_scalars[proc]
    rebuilt = {pos: cost for pos, cost in result.iteration_costs}
    for position, cost in enumerate(reference.iteration_costs):
        assert rebuilt[position] == (
            cost.flops, cost.mem_reads, cost.mem_writes, cost.scalar_ops,
            cost.intrinsics, cost.branches, cost.marks,
        )


# -- shadow merge primitives --------------------------------------------------


def test_merge_from_equals_sequential_marking():
    """Marking granules into per-worker shadows and merging must equal
    marking the same accesses into one shadow."""
    size = 16
    sequential = ShadowArray("a", size)
    part_one = ShadowArray("a", size)
    part_two = ShadowArray("a", size)

    # granules 0..3 on worker one, 4..7 on worker two (disjoint granules,
    # overlapping elements — exercises multi_w, np_, tw and the stamps).
    accesses = [
        (0, "w", 3), (0, "r", 5), (1, "w", 3), (1, "r", 3),
        (2, "redux", 7), (3, "w", 9),
        (4, "w", 3), (4, "r", 9), (5, "redux", 7), (6, "w", 5), (7, "r", 3),
    ]
    for granule, kind, index in accesses:
        part = part_one if granule < 4 else part_two
        for shadow in (sequential, part):
            if kind == "w":
                shadow.mark_write(index, granule)
            elif kind == "r":
                shadow.mark_read(index, granule)
            else:
                shadow.mark_redux(index, granule, "+")

    merged = ShadowArray("a", size)
    merged.merge_from([part_one, part_two])
    assert merged.tw == sequential.tw
    assert merged.tm == sequential.tm
    for fieldname in SHADOW_SURFACE:
        np.testing.assert_array_equal(
            getattr(merged, fieldname), getattr(sequential, fieldname),
            err_msg=fieldname,
        )


def test_from_buffers_rejects_bad_layout():
    from repro.core.shadow import SHADOW_FIELDS

    buffers = {
        name: np.zeros(4, dtype=dtype) for name, dtype in SHADOW_FIELDS
    }
    ShadowArray.from_buffers("a", 4, buffers)  # well-formed: accepted
    bad = dict(buffers)
    bad["_last_write"] = np.zeros(4, dtype=np.int32)
    with pytest.raises(ValueError):
        ShadowArray.from_buffers("a", 4, bad)
    with pytest.raises(ValueError):
        ShadowArray.from_buffers("a", 5, buffers)


# -- teardown robustness ------------------------------------------------------


def test_no_segments_leak_after_eager_abort():
    """The bugfix satellite: an eagerly aborted doall (worker raises
    SpeculationFailed mid-strip) must still unlink every segment."""
    workload = build_dependence_injected(n=80, dep_fraction=0.5)
    runner = LoopRunner(workload.program(), workload.inputs)
    report = runner.run(
        Strategy.SPECULATIVE,
        RunConfig(engine="parallel", workers=2, eager_failure_detection=True),
    )
    assert report.passed is False
    assert leaked_segments() == []


def test_no_segments_leak_after_worker_exception():
    """A worker crash (out-of-bounds subscript -> InterpError) is
    forwarded to the parent and the pool still unlinks its segments."""
    source = """
program oob
  integer i, n
  integer idx(6)
  real a(6)
  do i = 1, n
    a(idx(i)) = a(idx(i)) + 1.0
  end do
end
"""
    program = parse(source)
    plan = build_plan(program)
    env = Environment(
        program,
        {"n": 6, "idx": np.array([1, 2, 99, 4, 5, 6]), "a": np.zeros(6)},
    )
    shadow_sizes = {name: env.array_size(name) for name in plan.tested_arrays}
    marker = ShadowMarker(shadow_sizes)
    with pytest.raises(InterpError, match="out of bounds"):
        run_parallel_doall(
            program, plan.loop, env, plan, 4, marker=marker, workers=2
        )
    assert leaked_segments() == []


def test_pool_reuse_and_mismatch():
    """One pool serves several doalls; a processor-count mismatch is
    rejected; close() is idempotent and unlinks the arena."""
    workload = PAPER_LOOPS["BDNA_ACTFOR_do240"]()
    program, plan, env = _plan_env(workload)
    shadow_sizes = {name: env.array_size(name) for name in plan.tested_arrays}
    spec = ShardSpec.from_plan(program, plan.loop, plan, env, 4)
    with WorkerPool(spec, workers=2) as pool:
        assert leaked_segments() != []  # arena is live while the pool is
        for _ in range(2):
            marker = ShadowMarker(shadow_sizes)
            run = run_parallel_doall(
                program, plan.loop, env.copy(), plan, 4, marker=marker, pool=pool
            )
            assert run.executed_iterations == run.num_iterations
        with pytest.raises(InterpError, match="sharded for p="):
            run_parallel_doall(
                program, plan.loop, env.copy(), plan, 8,
                marker=ShadowMarker(shadow_sizes), pool=pool,
            )
    assert leaked_segments() == []
    pool.close()  # idempotent


def test_unmarked_executor_run():
    """marker=None (schedule-reuse / inspector executor) works and the
    assignment/iteration counts match the emulated engine."""
    workload = PAPER_LOOPS["OCEAN_FTRVMT_do109"]()
    program, plan, env = _plan_env(workload)
    reference = run_doall(
        program, plan.loop, env.copy(), plan, 4, marker=None, value_based=False
    )
    env_p = env.copy()
    run = run_parallel_doall(
        program, plan.loop, env_p, plan, 4,
        marker=None, value_based=False, workers=2,
    )
    assert run.assignment == reference.assignment
    assert run.iteration_costs == reference.iteration_costs
    assert run.executed_iterations == reference.executed_iterations
    assert leaked_segments() == []


def test_dynamic_schedule_parity():
    """DYNAMIC scheduling (emulated as a cyclic deal) shards identically."""
    workload = PAPER_LOOPS["MDG_INTERF_do1000"]()
    program, plan, env = _plan_env(workload)
    shadow_sizes = {name: env.array_size(name) for name in plan.tested_arrays}

    def one(engine):
        marker = ShadowMarker(shadow_sizes)
        run = run_doall(
            program, plan.loop, env.copy(), plan, 4, marker=marker,
            schedule=ScheduleKind.DYNAMIC, engine=engine, workers=2,
        )
        return run, marker

    ref_run, ref_marker = one("compiled")
    par_run, par_marker = one("parallel")
    expected = assign_iterations(
        len(ref_run.values), 4, ScheduleKind.CYCLIC
    )
    assert ref_run.assignment == expected == par_run.assignment
    assert ref_run.iteration_costs == par_run.iteration_costs
    assert_shadows_equal(ref_marker, par_marker)
