"""The unified :class:`LoopProfileStore`: bounds, telemetry, persistence.

The verdict cache's LRU behaviour (entry and byte bounds, recency
refresh, counters), the per-loop observation ring and the derived
queries the feedback planner consumes (engine stats, warm strip size,
failure-rate veto), and the JSON persistence layer — round-trips,
atomicity, and the missing/truncated/corrupt/foreign-file tolerance the
issue demands.
"""

from __future__ import annotations

import json

import pytest

from repro.core.outcomes import ArrayTestDetail, LrpdResult, TestMode
from repro.runtime.profile import (
    DEFAULT_RING,
    FAILURE_RATE_THRESHOLD,
    LoopProfileStore,
    MIN_VETO_ATTEMPTS,
    RunObservation,
    ScheduleCache,
)
from repro.runtime.profile.persist import FORMAT, VERSION, store_to_json


def _result(arrays=()):
    details = {
        name: ArrayTestDetail(
            name=name, tw=3, tm=3, fully_parallel=True,
            privatized_elements=0, reduction_elements=0, failed_elements=0,
        )
        for name in arrays
    }
    return LrpdResult(
        mode=TestMode.LRPD, granularity="iteration", details=details
    )


def _obs(engine, doall_s, *, passed=True, strip_size=None, reused=False,
         strategy="speculative", recovered_fraction=None,
         sync_wait_cycles=0.0):
    return RunObservation(
        strategy=strategy, engine=engine, backend="fork",
        wall_s=doall_s, doall_s=doall_s, passed=passed,
        strip_size=strip_size, reused=reused,
        recovered_fraction=recovered_fraction,
        sync_wait_cycles=sync_wait_cycles,
    )


class TestLruBounds:
    def test_entry_bound_evicts_oldest(self):
        cache = ScheduleCache(max_entries=2)
        cache.record("loop", "a", _result())
        cache.record("loop", "b", _result())
        cache.record("loop", "c", _result())
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup("loop", "a") is None
        assert cache.lookup("loop", "b") is not None
        assert cache.lookup("loop", "c") is not None

    def test_lookup_refreshes_recency(self):
        cache = ScheduleCache(max_entries=2)
        cache.record("loop", "a", _result())
        cache.record("loop", "b", _result())
        cache.lookup("loop", "a")  # a becomes MRU; b is now the victim
        cache.record("loop", "c", _result())
        assert cache.lookup("loop", "a") is not None
        assert cache.lookup("loop", "b") is None

    def test_byte_bound_evicts(self):
        heavy = _result(arrays=["x", "y", "z"])
        one_entry = len("loop") + len("a") + 48 + 88 * 3
        cache = ScheduleCache(max_entries=100, max_bytes=one_entry + 10)
        cache.record("loop", "a", heavy)
        assert cache.bytes_used == one_entry
        cache.record("loop", "b", heavy)
        assert cache.evictions == 1
        assert len(cache) == 1
        assert cache.lookup("loop", "b") is not None

    def test_newest_entry_survives_even_over_byte_bound(self):
        cache = ScheduleCache(max_entries=100, max_bytes=1)
        cache.record("loop", "a", _result(arrays=["x"]))
        assert len(cache) == 1
        assert cache.lookup("loop", "a") is not None

    def test_rerecord_replaces_without_double_counting_bytes(self):
        cache = ScheduleCache()
        cache.record("loop", "a", _result(arrays=["x"]))
        before = cache.bytes_used
        cache.record("loop", "a", _result(arrays=["x"]))
        assert cache.bytes_used == before
        assert len(cache) == 1

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ScheduleCache(max_entries=0)
        with pytest.raises(ValueError):
            ScheduleCache(max_bytes=0)


class TestCounters:
    def test_counters_snapshot(self):
        store = LoopProfileStore()
        store.lookup_verdict("loop", "sig")          # miss
        store.record_verdict("loop", "sig", _result())
        store.lookup_verdict("loop", "sig")          # hit
        store.lookup_verdict("loop", "other")        # miss
        assert store.counters() == {
            "lookups": 3, "hits": 1, "misses": 2,
            "evictions": 0, "entries": 1,
        }

    def test_none_signature_counts_as_miss_and_never_caches(self):
        store = LoopProfileStore()
        store.record_verdict("loop", None, _result())
        assert len(store) == 0
        assert store.lookup_verdict("loop", None) is None
        assert store.misses == 1

    def test_per_entry_hit_counts(self):
        store = LoopProfileStore()
        store.record_verdict("loop", "sig", _result())
        store.lookup_verdict("loop", "sig")
        store.lookup_verdict("loop", "sig")
        assert store.verdicts.entry_hits("loop", "sig") == 2


class TestObservationRing:
    def test_ring_is_bounded(self):
        store = LoopProfileStore(ring=4)
        for i in range(10):
            store.observe("loop", _obs("compiled", float(i + 1)))
        kept = store.observations("loop")
        assert len(kept) == 4
        assert kept[0].doall_s == 7.0  # oldest six fell off

    def test_default_ring(self):
        store = LoopProfileStore()
        for i in range(DEFAULT_RING + 5):
            store.observe("loop", _obs("compiled", 1.0))
        assert len(store.observations("loop")) == DEFAULT_RING

    def test_loop_keys_sorted(self):
        store = LoopProfileStore()
        store.observe("b", _obs("compiled", 1.0))
        store.observe("a", _obs("compiled", 1.0))
        assert store.loop_keys() == ["a", "b"]

    def test_next_decision_increments_per_loop(self):
        store = LoopProfileStore()
        assert store.next_decision("loop") == 1
        assert store.next_decision("loop") == 2
        assert store.next_decision("other") == 1


class TestDerivedQueries:
    def test_engine_stats_means(self):
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.2))
        store.observe("loop", _obs("compiled", 0.4))
        store.observe("loop", _obs("vectorized", 0.1))
        stats = store.engine_stats("loop")
        assert stats["compiled"] == (2, pytest.approx(0.3))
        assert stats["vectorized"] == (1, pytest.approx(0.1))

    def test_engine_stats_skip_untimed_runs(self):
        store = LoopProfileStore()
        store.observe("loop", _obs(None, 0.5))                 # no doall ran
        store.observe("loop", _obs("compiled", 0.5, reused=True))
        store.observe("loop", _obs("compiled", 0.0))           # untimed
        assert store.engine_stats("loop") == {}

    def test_warm_strip_size_is_most_recent_passing(self):
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.1, strip_size=16))
        store.observe("loop", _obs("compiled", 0.1, strip_size=64))
        store.observe("loop", _obs("compiled", 0.1, strip_size=128,
                                   passed=False))
        assert store.warm_strip_size("loop") == 64
        assert store.warm_strip_size("unknown") is None

    def test_failure_stats_ignore_untested_runs(self):
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        store.observe("loop", _obs(None, 0.1, passed=None))  # serial/vetoed
        store.observe("loop", _obs("compiled", 0.1, passed=True))
        assert store.failure_stats("loop") == (1, 2)


class TestSpeculationVeto:
    def test_quiet_below_min_attempts(self):
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        assert MIN_VETO_ATTEMPTS > 1
        assert store.speculation_veto("loop") is None

    def test_quiet_below_threshold(self):
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        store.observe("loop", _obs("compiled", 0.1, passed=True))
        store.observe("loop", _obs("compiled", 0.1, passed=True))
        assert 1 / 3 < FAILURE_RATE_THRESHOLD
        assert store.speculation_veto("loop") is None

    def test_fires_with_evidence(self):
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        reason = store.speculation_veto("loop")
        assert reason is not None
        assert "2/2" in reason
        assert "failure rate" in reason
        assert "serial" in reason

    def test_untested_runs_keep_the_veto_sticky(self):
        """Serial runs under a veto record passed=None, so they must not
        dilute the failure rate back below the threshold."""
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        for _ in range(5):
            store.observe("loop", _obs(None, 0.1, passed=None))
        assert store.speculation_veto("loop") is not None


class TestVetoLifecycle:
    """The vetoed→lifted transition and its consumed-once signal."""

    def _vetoed_store(self):
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        assert store.speculation_veto("loop") is not None
        return store

    def test_no_signal_without_a_prior_veto(self):
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.1, passed=True))
        store.speculation_veto("loop")
        assert not store.veto_cleared("loop")
        assert not store.veto_cleared("unknown-loop")

    def test_no_signal_while_veto_holds(self):
        store = self._vetoed_store()
        assert not store.veto_cleared("loop")

    def test_lifted_veto_signals_exactly_once(self):
        store = self._vetoed_store()
        # Passes dilute the failure rate until the veto lifts.
        for _ in range(6):
            store.observe("loop", _obs("compiled", 0.1, passed=True))
        assert store.speculation_veto("loop") is None
        assert store.veto_cleared("loop")
        assert not store.veto_cleared("loop")  # consumed on read

    def test_refiring_veto_rearms_the_signal(self):
        store = self._vetoed_store()
        for _ in range(6):
            store.observe("loop", _obs("compiled", 0.1, passed=True))
        store.speculation_veto("loop")
        assert store.veto_cleared("loop")
        for _ in range(DEFAULT_RING):
            store.observe("loop", _obs("compiled", 0.1, passed=False))
        assert store.speculation_veto("loop") is not None
        for _ in range(DEFAULT_RING):
            store.observe("loop", _obs("compiled", 0.1, passed=True))
        assert store.speculation_veto("loop") is None
        assert store.veto_cleared("loop")


class TestRecoveryHistory:
    """The DOACROSS tier's profiled fractions: stats, rescue, veto."""

    def test_stats_empty_without_recovery_runs(self):
        store = LoopProfileStore()
        store.observe("loop", _obs("compiled", 0.1, passed=False))
        assert store.recovery_stats("loop") == (0, 0.0, 0.0)

    def test_stats_mean_fraction_and_sync(self):
        store = LoopProfileStore()
        store.observe("loop", _obs(
            "compiled", 0.1, passed=False,
            recovered_fraction=0.4, sync_wait_cycles=10.0,
        ))
        store.observe("loop", _obs(
            "compiled", 0.1, passed=False,
            recovered_fraction=0.2, sync_wait_cycles=30.0,
        ))
        count, mean, sync = store.recovery_stats("loop")
        assert count == 2
        assert mean == pytest.approx(0.3)
        assert sync == pytest.approx(20.0)

    def test_vetoed_recoveries_drag_the_mean_down(self):
        store = LoopProfileStore()
        store.observe("loop", _obs(
            "compiled", 0.1, passed=False, recovered_fraction=0.6,
        ))
        store.observe("loop", _obs(
            "compiled", 0.1, passed=False, recovered_fraction=0.0,
        ))
        _count, mean, _sync = store.recovery_stats("loop")
        assert mean == pytest.approx(0.3)

    def test_rescue_needs_history_above_threshold(self):
        from repro.runtime.profile import RECOVERY_MIN_FRACTION

        store = LoopProfileStore()
        assert store.recovery_rescue("loop") is None  # no history
        store.observe("loop", _obs(
            "compiled", 0.1, passed=False,
            recovered_fraction=RECOVERY_MIN_FRACTION / 2,
        ))
        assert store.recovery_rescue("loop") is None  # below threshold
        store.observe("loop", _obs(
            "compiled", 0.1, passed=False, recovered_fraction=0.9,
        ))
        reason = store.recovery_rescue("loop")
        assert reason is not None
        assert "speculating past the failure veto" in reason

    def test_recovery_veto_fires_on_poor_mean(self):
        store = LoopProfileStore()
        assert store.recovery_veto("loop") is None  # thin history is quiet
        store.observe("loop", _obs(
            "compiled", 0.1, passed=False, recovered_fraction=0.0,
        ))
        reason = store.recovery_veto("loop")
        assert reason is not None
        assert "roll back serially" in reason

    def test_recovery_veto_quiet_on_good_mean(self):
        store = LoopProfileStore()
        store.observe("loop", _obs(
            "compiled", 0.1, passed=False, recovered_fraction=0.5,
        ))
        assert store.recovery_veto("loop") is None

    def test_recovery_fields_survive_persistence(self, tmp_path):
        path = tmp_path / "profiles.json"
        store = LoopProfileStore(path=path)
        store.observe("loop", _obs(
            "compiled", 0.1, passed=False,
            recovered_fraction=0.4, sync_wait_cycles=12.0,
        ))
        store.save()
        fresh = LoopProfileStore(path=path)
        fresh.load()
        obs = fresh.observations("loop")[-1]
        assert obs.recovered_fraction == pytest.approx(0.4)
        assert obs.sync_wait_cycles == pytest.approx(12.0)
        assert fresh.recovery_stats("loop")[0] == 1


class TestPersistence:
    def _seed(self, store):
        store.record_verdict("loopA", "sig1", _result(arrays=["a"]))
        store.record_verdict("loopA", "sig2", _result())
        store.lookup_verdict("loopA", "sig1")
        store.observe("loopA", _obs("compiled", 0.25, strip_size=32))
        store.observe("loopB", _obs("vectorized", 0.5, passed=False))
        store.next_decision("loopA")
        store.next_decision("loopA")

    def test_round_trip(self, tmp_path):
        path = tmp_path / "profiles.json"
        store = LoopProfileStore()
        self._seed(store)
        store.save(path)

        loaded = LoopProfileStore(path=path)
        assert loaded.load_error is None
        assert len(loaded) == 2
        assert loaded.verdicts.entry_hits("loopA", "sig1") == 1
        assert loaded.lookup_verdict("loopA", "sig1") == _result(arrays=["a"])
        assert loaded.observations("loopA") == store.observations("loopA")
        assert loaded.observations("loopB") == store.observations("loopB")
        # The decision counter continues where the saved run left off.
        assert loaded.next_decision("loopA") == 3

    def test_round_trip_preserves_lru_order(self, tmp_path):
        path = tmp_path / "profiles.json"
        store = LoopProfileStore()
        store.record_verdict("loop", "old", _result())
        store.record_verdict("loop", "new", _result())
        store.lookup_verdict("loop", "old")  # old becomes MRU
        store.save(path)

        loaded = LoopProfileStore(path=path, max_entries=1)
        assert loaded.lookup_verdict("loop", "old") is not None
        assert loaded.lookup_verdict("loop", "new") is None

    def test_missing_file_is_clean_empty_start(self, tmp_path):
        store = LoopProfileStore(path=tmp_path / "never-written.json")
        assert store.load_error is None
        assert len(store) == 0

    def test_truncated_file_tolerated(self, tmp_path):
        path = tmp_path / "profiles.json"
        full = LoopProfileStore()
        self._seed(full)
        full.save(path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])

        store = LoopProfileStore(path=path)
        assert store.load_error is not None
        assert "corrupt" in store.load_error
        assert len(store) == 0
        assert store.observations("loopA") == []

    def test_foreign_json_tolerated(self, tmp_path):
        path = tmp_path / "profiles.json"
        path.write_text(json.dumps({"something": "else"}))
        store = LoopProfileStore(path=path)
        assert store.load_error == "not a loop-profile file"

    def test_non_object_json_tolerated(self, tmp_path):
        path = tmp_path / "profiles.json"
        path.write_text("[1, 2, 3]\n")
        store = LoopProfileStore(path=path)
        assert store.load_error == "not a loop-profile file"

    def test_future_version_tolerated(self, tmp_path):
        path = tmp_path / "profiles.json"
        path.write_text(json.dumps({"format": FORMAT, "version": VERSION + 1}))
        store = LoopProfileStore(path=path)
        assert store.load_error is not None
        assert "version" in store.load_error

    def test_mangled_payload_leaves_store_empty(self, tmp_path):
        """A structurally valid file with a broken record must not load
        half the contents: the store is cleared on any restore error."""
        path = tmp_path / "profiles.json"
        store = LoopProfileStore()
        self._seed(store)
        payload = store_to_json(store)
        payload["verdicts"][0]["result"]["mode"] = "no-such-mode"
        path.write_text(json.dumps(payload))

        loaded = LoopProfileStore(path=path)
        assert loaded.load_error is not None
        assert "corrupt" in loaded.load_error
        assert len(loaded) == 0
        assert loaded.loop_keys() == []

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "profiles.json"
        store = LoopProfileStore()
        self._seed(store)
        store.save(path)
        assert path.exists()
        assert [p.name for p in path.parent.iterdir()] == [path.name]
        # Saving over an existing file replaces it wholesale.
        store.record_verdict("loopC", "sig", _result())
        store.save(path)
        assert LoopProfileStore(path=path).lookup_verdict(
            "loopC", "sig"
        ) is not None

    def test_pathless_store_save_and_load_are_noops(self, tmp_path):
        store = LoopProfileStore()
        self._seed(store)
        store.save()   # no path: nothing to do, nothing raised
        store.load()
        assert store.load_error is None
        # load() with no path clears (documented: replace contents).
        assert len(store) == 0

    def test_kernel_ledger_not_persisted(self, tmp_path):
        """Compiled-code warmth dies with the process; the snapshot
        must not carry the jit warm-up ledger."""
        store = LoopProfileStore()
        self._seed(store)
        payload = store_to_json(store)
        assert set(payload) == {"format", "version", "verdicts", "loops"}


class TestSignatureMemo:
    """The content-digest fast path behind ``pattern_signature``."""

    def _env(self):
        import numpy as np

        from repro.dsl.parser import parse
        from repro.interp.env import Environment

        source = (
            "program p\n  integer i, n, idx(8)\n  real a(8)\n"
            "  do i = 1, n\n    a(idx(i)) = 1.0\n  end do\nend\n"
        )
        program = parse(source)
        return Environment(
            program, {"n": 8, "idx": np.arange(1, 9)}
        ), np.arange

    def test_digest_is_memoized_until_mutation(self):
        env, arange = self._env()
        first = env.content_digest("idx")
        assert env.content_digest("idx") == first
        env.set_input("idx", arange(8, 0, -1))
        assert env.content_digest("idx") != first

    def test_store_bumps_version(self):
        env, _ = self._env()
        first = env.content_digest("idx")
        env.store("idx", 1, 99)
        assert env.content_digest("idx") != first
