"""AccessRouter tests."""

import numpy as np
import pytest

from repro.core.privatize import PrivateCopies
from repro.core.reduction_exec import ReductionPartials
from repro.dsl.parser import parse
from repro.errors import InterpError
from repro.interp.env import Environment
from repro.runtime.access_router import AccessRouter, check_router_config

PROGRAM = parse("program p\n  real a(4), b(4), f(4)\nend\n")


def make_router(redux_refs=None):
    env = Environment(PROGRAM, {"b": np.arange(1.0, 5.0)})
    privates = {"a": PrivateCopies("a", env.arrays["a"], 2)}
    partials = {"f": ReductionPartials("f", 2)}
    router = AccessRouter(env, privates, partials, redux_refs or {})
    return env, privates, partials, router


def test_untested_array_goes_to_shared():
    env, _, _, router = make_router()
    router.set_context(proc=0, iteration=0)
    assert router.load("b", 2) == 2.0
    router.store("b", 2, 9.0)
    assert env.load("b", 2) == 9.0


def test_tested_array_routed_to_private_copy():
    env, privates, _, router = make_router()
    router.set_context(proc=1, iteration=3)
    router.store("a", 1, 5.0)
    assert env.load("a", 1) == 0.0           # shared untouched
    assert privates["a"].load(1, 0) == 5.0   # private holds the value
    assert privates["a"].wstamp[1, 0] == 3   # stamped with the iteration
    assert router.load("a", 1) == 5.0


def test_private_reads_are_per_processor():
    _, _, _, router = make_router()
    router.set_context(proc=0, iteration=0)
    router.store("a", 2, 7.0)
    router.set_context(proc=1, iteration=1)
    assert router.load("a", 2) == 0.0


def test_redux_ref_routed_to_partials():
    _, privates, partials, router = make_router(redux_refs={42: "+"})
    router.set_context(proc=0, iteration=0)
    assert router.load("f", 1, ref_id=42) == 0.0  # identity
    router.store("f", 1, 3.5, ref_id=42)
    assert partials["f"].load(0, 0, "+") == 3.5


def test_non_redux_ref_to_reduction_array_goes_shared():
    env, _, _, router = make_router(redux_refs={42: "+"})
    router.set_context(proc=0, iteration=0)
    # f is not privatized here and ref 7 is not a reduction ref.
    router.store("f", 2, 1.5, ref_id=7)
    assert env.load("f", 2) == 1.5


def test_bounds_checked():
    _, _, _, router = make_router()
    router.set_context(0, 0)
    with pytest.raises(InterpError):
        router.load("a", 0)
    with pytest.raises(InterpError):
        router.store("a", 5, 1.0)


def test_config_validation():
    env, privates, partials, _ = make_router()
    with pytest.raises(InterpError):
        check_router_config(privates, partials, num_procs=3)
    check_router_config(privates, partials, num_procs=2)


def test_private_elements_per_proc():
    _, _, _, router = make_router()
    assert router.private_elements_per_proc() == 4
