"""Serial executor tests."""

import numpy as np

from repro.dsl.parser import parse
from repro.interp.interpreter import Interpreter, find_target_loop
from repro.machine.costmodel import CostModel
from repro.runtime.serial import (
    loop_iteration_values,
    rerun_loop_serially,
    run_serial,
)

SOURCE = (
    "program p\n  integer i, n\n  real a(8), s\n"
    "  n = 8\n  s = 0.0\n"
    "  do i = 1, n\n    a(i) = real(i) * 2.0\n  end do\n"
    "  s = a(1)\nend\n"
)


class TestIterationValues:
    def test_simple_range(self):
        assert loop_iteration_values(1, 5, 1) == [1, 2, 3, 4, 5]

    def test_step(self):
        assert loop_iteration_values(1, 10, 3) == [1, 4, 7, 10]

    def test_negative_step(self):
        assert loop_iteration_values(5, 1, -2) == [5, 3, 1]

    def test_empty(self):
        assert loop_iteration_values(5, 1, 1) == []


class TestRunSerial:
    def test_executes_whole_program(self):
        run = run_serial(parse(SOURCE), {}, CostModel())
        assert run.env.arrays["a"][0] == 2.0
        assert run.env.scalars["s"] == 2.0

    def test_loop_time_and_iteration_costs(self):
        run = run_serial(parse(SOURCE), {}, CostModel())
        assert run.num_iterations == 8
        assert len(run.loop_iteration_costs) == 8
        assert run.loop_time > 0.0

    def test_setup_and_teardown_timed_separately(self):
        run = run_serial(parse(SOURCE), {}, CostModel())
        assert run.setup_time > 0.0
        assert run.teardown_time > 0.0

    def test_loop_var_final_value(self):
        run = run_serial(parse(SOURCE), {}, CostModel())
        assert run.env.scalars["i"] == 9

    def test_zero_trip_loop(self):
        source = (
            "program p\n  integer i, n\n  real a(4)\n"
            "  do i = 1, n\n    a(i) = 1.0\n  end do\nend\n"
        )
        run = run_serial(parse(source), {"n": 0}, CostModel())
        assert run.num_iterations == 0
        assert run.loop_time == 0.0


class TestRerunSerially:
    def test_rerun_produces_serial_result(self):
        program = parse(SOURCE)
        from repro.interp.env import Environment

        env = Environment(program, {})
        interp = Interpreter(program, env, value_based=False)
        interp.exec_block(program.body[:2])  # n = 8; s = 0.0
        loop = find_target_loop(program)
        time, iteration_costs = rerun_loop_serially(interp, loop, CostModel())
        assert time > 0.0
        assert len(iteration_costs) == 8
        np.testing.assert_allclose(
            env.arrays["a"], np.arange(1, 9, dtype=float) * 2.0
        )
