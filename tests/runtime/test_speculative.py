"""Speculative strategy tests: pass, fail+rollback, transforms, timing."""

import numpy as np
import pytest

from repro.core.outcomes import TestMode
from repro.core.shadow import Granularity
from repro.errors import SpeculationError
from repro.machine.costmodel import CostModel
from repro.machine.schedule import ScheduleKind
from repro.runtime.orchestrator import RunConfig, Strategy

from tests.conftest import make_runner, speculative_vs_serial

PERMUTED_WRITE = (
    "program p\n  integer i, n, idx(8)\n  real a(8), v(8)\n"
    "  do i = 1, n\n    a(idx(i)) = v(i) * 2.0\n  end do\nend\n"
)

FLOW_DEP = (
    "program p\n  integer i, n, w(6), r(6)\n  real a(12), v(6)\n"
    "  do i = 1, n\n    a(w(i)) = a(r(i)) + v(i)\n  end do\nend\n"
)

REDUX = (
    "program p\n  integer i, n, idx(8)\n  real f(4), v(8)\n"
    "  do i = 1, n\n    f(idx(i)) = f(idx(i)) + v(i)\n  end do\nend\n"
)


class TestPassingLoops:
    def test_permuted_writes_pass(self):
        report = speculative_vs_serial(
            PERMUTED_WRITE,
            {"n": 8, "idx": np.array([3, 1, 4, 2, 8, 6, 5, 7]), "v": np.arange(8.0)},
            arrays=["a"],
        )
        assert report.passed
        assert report.test_result.fully_parallel

    def test_covered_reads_pass_with_privatization(self):
        source = (
            "program p\n  integer i, n, idx(8)\n  real a(8), wk(4), v(8)\n"
            "  do i = 1, n\n    wk(1) = v(i)\n    wk(2) = wk(1) * 2.0\n"
            "    a(idx(i)) = wk(2)\n  end do\nend\n"
        )
        report = speculative_vs_serial(
            source,
            {"n": 8, "idx": np.array([5, 2, 7, 1, 3, 8, 4, 6]), "v": np.arange(8.0)},
            arrays=["a"],
        )
        assert report.passed
        detail = report.test_result.details["wk"]
        assert detail.privatized_elements > 0

    def test_reduction_passes_and_merges(self):
        report = speculative_vs_serial(
            REDUX,
            {"n": 8, "idx": np.array([1, 2, 1, 3, 2, 1, 4, 4]), "v": np.arange(8.0)},
            arrays=["f"],
        )
        assert report.passed
        assert report.test_result.details["f"].reduction_elements > 0

    def test_scalar_reduction_merged(self):
        source = (
            "program p\n  integer i, n, idx(8)\n  real a(8), s, v(8)\n"
            "  do i = 1, n\n    a(idx(i)) = v(i)\n    s = s + v(i)\n  end do\nend\n"
        )
        report = speculative_vs_serial(
            source,
            {"n": 8, "idx": np.arange(8, 0, -1), "v": np.arange(8.0), "s": 100.0},
            arrays=["a"], scalars=["s"],
        )
        assert report.passed

    def test_output_dependences_resolved_by_last_value(self):
        # Two iterations write element 3; the later one must win.
        report = speculative_vs_serial(
            PERMUTED_WRITE,
            {"n": 8, "idx": np.array([3, 1, 4, 3, 8, 6, 5, 7]), "v": np.arange(8.0)},
            arrays=["a"],
        )
        assert report.passed
        assert not report.test_result.fully_parallel


class TestFailingLoops:
    INPUTS = {
        "n": 6,
        "w": np.array([1, 2, 3, 4, 5, 6]),
        "r": np.array([7, 1, 8, 9, 3, 10]),  # reads elements 1 and 3 after write
        "v": np.arange(6.0),
    }

    def test_flow_dependence_fails_and_recovers(self):
        report = speculative_vs_serial(FLOW_DEP, dict(self.INPUTS), arrays=["a"])
        assert not report.passed
        assert report.times.serial_rerun > 0.0
        assert report.times.restore > 0.0

    def test_failed_run_slower_than_serial_but_bounded(self):
        # Use a big enough loop that the fixed phase costs amortize: the
        # paper's bound is serial + the (parallelizable) attempt overhead.
        rng = np.random.default_rng(3)
        n = 200
        inputs = {
            "n": n,
            "w": np.arange(1, n + 1),
            "r": np.concatenate(([n + 1], np.arange(1, n))),  # reads prior writes
            "v": rng.normal(size=n),
        }
        source = (
            f"program p\n  integer i, n, w({n}), r({n})\n"
            f"  real a({2 * n}), v({n})\n"
            "  do i = 1, n\n    a(w(i)) = a(r(i)) + v(i)\n  end do\nend\n"
        )
        report = speculative_vs_serial(source, inputs, arrays=["a"])
        assert not report.passed
        assert report.speedup < 1.0
        assert report.loop_time < 3.0 * report.serial_loop_time

    def test_live_out_scalar_correct_after_rollback(self):
        source = (
            "program p\n  integer i, n, w(6), r(6)\n  real a(12), v(6), t\n"
            "  do i = 1, n\n    t = a(r(i)) + v(i)\n    a(w(i)) = t\n  end do\n"
            "  v(1) = t\nend\n"
        )
        report = speculative_vs_serial(
            source, dict(self.INPUTS), arrays=["a", "v"]
        )
        assert not report.passed


class TestConfigurations:
    def test_processor_wise_requires_block_schedule(self):
        runner = make_runner(
            PERMUTED_WRITE,
            {"n": 8, "idx": np.arange(1, 9), "v": np.zeros(8)},
        )
        config = RunConfig(
            model=CostModel(num_procs=4),
            granularity=Granularity.PROCESSOR,
            schedule=ScheduleKind.CYCLIC,
        )
        with pytest.raises(SpeculationError):
            runner.run(Strategy.SPECULATIVE, config)

    def test_pd_mode_is_more_conservative(self):
        # Dead reads of written elements: LRPD passes, PD fails.
        source = (
            "program p\n  integer i, n, w(6), r(6)\n  real a(12), v(6), t\n"
            "  do i = 1, n\n    t = a(r(i))\n    a(w(i)) = v(i)\n  end do\nend\n"
        )
        inputs = {
            "n": 6,
            "w": np.array([1, 2, 3, 4, 5, 6]),
            "r": np.array([2, 3, 4, 5, 6, 1]),
            "v": np.arange(6.0),
        }
        lrpd = speculative_vs_serial(source, dict(inputs), arrays=["a"])
        assert lrpd.passed
        pd = speculative_vs_serial(
            source, dict(inputs), arrays=["a"],
            config=RunConfig(model=CostModel(num_procs=4), test_mode=TestMode.PD),
        )
        assert not pd.passed

    def test_timing_phases_present(self):
        report = speculative_vs_serial(
            PERMUTED_WRITE,
            {"n": 8, "idx": np.arange(1, 9), "v": np.zeros(8)},
            arrays=["a"],
        )
        phases = report.times.nonzero_phases()
        for phase in ("checkpoint", "body", "analysis", "barrier"):
            assert phase in phases

    def test_stats_recorded(self):
        report = speculative_vs_serial(
            PERMUTED_WRITE,
            {"n": 8, "idx": np.arange(1, 9), "v": np.zeros(8)},
            arrays=["a"],
        )
        assert report.stats["iterations"] == 8
        assert report.stats["marks"] > 0


class TestVariousProcCounts:
    @pytest.mark.parametrize("procs", [1, 2, 3, 5, 8])
    def test_result_independent_of_proc_count(self, procs):
        report = speculative_vs_serial(
            REDUX,
            {"n": 8, "idx": np.array([1, 2, 1, 3, 2, 1, 4, 4]), "v": np.arange(8.0)},
            procs=procs,
            arrays=["f"],
        )
        assert report.passed
