"""The strip-mined speculation pipeline (Strategy.STRIPPED)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.costmodel import fx80
from repro.runtime.adaptive import AdaptiveStripSizer
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.speculative import FixedStripSizer
from repro.workloads.bdna import build_bdna
from repro.workloads.mdg import build_mdg
from repro.workloads.ocean import build_ocean
from repro.workloads.synthetic import build_partial_parallel


def _runner(workload) -> LoopRunner:
    return LoopRunner(workload.program(), workload.inputs)


@pytest.mark.parametrize(
    "build, kwargs",
    [
        (build_bdna, {"n": 60}),
        (build_mdg, {"n": 40}),
        (build_ocean, {}),
    ],
    ids=["bdna", "mdg", "ocean"],
)
def test_strip_size_none_is_bit_identical_to_speculative(build, kwargs):
    """strip_size=None degenerates to the unstripped protocol: the whole
    report — every simulated time, every stat, every memory cell — must
    reproduce Strategy.SPECULATIVE exactly."""
    workload = build(**kwargs)
    spec = _runner(workload).run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
    none = _runner(workload).run(Strategy.STRIPPED, RunConfig(model=fx80()))
    assert none.times.as_dict() == spec.times.as_dict()
    assert none.stats == spec.stats
    assert none.passed == spec.passed
    assert none.strips == []
    assert none.env.scalars == spec.env.scalars
    for name in none.env.arrays:
        np.testing.assert_array_equal(none.env.arrays[name], spec.env.arrays[name])


@pytest.mark.parametrize("strip_size", [7, 16, 1000])
def test_stripped_passing_workload_matches_serial(strip_size):
    workload = build_bdna(n=60)
    runner = _runner(workload)
    serial = runner.serial_run(fx80())
    report = runner.run(
        Strategy.STRIPPED, RunConfig(model=fx80(), strip_size=strip_size)
    )
    assert report.passed
    assert all(s.passed for s in report.strips)
    for name in workload.check_arrays:
        np.testing.assert_allclose(
            report.env.arrays[name], serial.env.arrays[name]
        )
    # The per-strip breakdowns sum to the report's whole-loop breakdown.
    total = {}
    for s in report.strips:
        for phase, cycles in s.times.as_dict().items():
            total[phase] = total.get(phase, 0.0) + cycles
    for phase, cycles in report.times.as_dict().items():
        assert cycles == pytest.approx(total.get(phase, 0.0)), phase


def test_failed_strip_rolls_back_only_itself():
    """A serial dependence band fails only the strip(s) covering it; the
    loop still completes with serial-identical memory and the parallel
    strips' speedup survives."""
    workload = build_partial_parallel(n=400, band_length=24, work=60)
    runner = _runner(workload)
    serial = runner.serial_run(fx80())
    unstripped = _runner(workload).run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
    report = runner.run(Strategy.STRIPPED, RunConfig(model=fx80(), strip_size=50))

    assert not unstripped.passed
    assert unstripped.speedup <= 1.0
    assert not report.passed  # some strip rolled back
    failed = [s for s in report.strips if not s.passed]
    assert 1 <= len(failed) <= 2  # the band spans at most two strips
    assert len(report.strips) == 8
    # Rollback is bounded: only failed strips pay restore + serial rerun.
    for s in report.strips:
        if s.passed:
            assert s.times.serial_rerun == 0.0
            assert s.times.restore == 0.0
        else:
            assert s.times.serial_rerun > 0.0
    assert report.stats["serial_iterations"] == sum(s.iterations for s in failed)
    np.testing.assert_allclose(
        report.env.arrays["a"], serial.env.arrays["a"]
    )
    assert report.speedup > 1.5 > unstripped.speedup


def test_stripped_checkpoint_excludes_buffered_arrays():
    """Per-strip checkpoints save only arrays the doall writes in place;
    tested (privatized) and reduction arrays are buffered in private
    copies/partials, so a workload whose written arrays are all tested
    checkpoints nothing per strip."""
    workload = build_partial_parallel(n=100, band_length=10, work=5)
    spec = _runner(workload).run(Strategy.SPECULATIVE, RunConfig(model=fx80()))
    stripped = _runner(workload).run(
        Strategy.STRIPPED, RunConfig(model=fx80(), strip_size=25)
    )
    assert spec.stats["checkpoint_elements"] > 0.0
    assert stripped.stats["checkpoint_elements"] == 0.0


def test_eager_aborts_inside_failing_strips():
    workload = build_partial_parallel(n=200, band_length=16, work=5)
    report = _runner(workload).run(
        Strategy.STRIPPED,
        RunConfig(model=fx80(), strip_size=25, eager_failure_detection=True),
    )
    aborted = [s for s in report.strips if s.aborted]
    assert aborted and all(not s.passed for s in aborted)
    assert report.stats["aborted_strips"] == len(aborted)
    for s in aborted:
        assert s.times.analysis == 0.0  # detection replaced the test phase
    serial = _runner(workload).serial_run(fx80())
    np.testing.assert_allclose(report.env.arrays["a"], serial.env.arrays["a"])


def test_fixed_sizer_rejects_nonpositive():
    from repro.errors import SpeculationError

    with pytest.raises(SpeculationError):
        FixedStripSizer(0)


def test_adaptive_sizer_grows_and_shrinks():
    sizer = AdaptiveStripSizer(initial_size=16, min_size=4, max_size=64, grow_after=2)
    assert sizer.next_size() == 16
    sizer.record(True)
    assert sizer.next_size() == 16  # one pass is not yet a streak
    sizer.record(True)
    assert sizer.next_size() == 32  # grew after two consecutive passes
    sizer.record(False)
    assert sizer.next_size() == 16  # halved on failure
    for _ in range(10):
        sizer.record(False)
    assert sizer.next_size() == 4  # floor
    for _ in range(20):
        sizer.record(True)
    assert sizer.next_size() == 64  # ceiling


def test_adaptive_sizer_floor_defaults_to_min_size():
    sizer = AdaptiveStripSizer(initial_size=16, min_size=4, max_size=64)
    assert sizer.floor == 4
    for _ in range(10):
        sizer.record(False)
    assert sizer.next_size() == 4


def test_adaptive_sizer_raised_floor_stops_the_shrink():
    # The warm-start contract: one unlucky strip must not shrink below
    # the converged size history handed the sizer.
    sizer = AdaptiveStripSizer(initial_size=32, min_size=4, max_size=64)
    sizer.raise_floor(32)
    for _ in range(10):
        sizer.record(False)
    assert sizer.next_size() == 32


def test_adaptive_sizer_reset_floor_restores_full_range():
    sizer = AdaptiveStripSizer(initial_size=32, min_size=4, max_size=64)
    sizer.raise_floor(32)
    sizer.record(False)
    assert sizer.next_size() == 32
    sizer.reset_floor()  # a lifted veto marked the history stale
    assert sizer.floor == sizer.min_size
    for _ in range(10):
        sizer.record(False)
    assert sizer.next_size() == 4


def test_adaptive_sizer_floor_clamps_to_bounds():
    sizer = AdaptiveStripSizer(initial_size=16, min_size=4, max_size=64)
    sizer.raise_floor(1000)
    assert sizer.floor == 64
    sizer.raise_floor(1)
    assert sizer.floor == 4


def test_adaptive_strip_sizing_end_to_end():
    workload = build_partial_parallel(n=400, band_length=24, work=20)
    runner = _runner(workload)
    serial = runner.serial_run(fx80())
    report = runner.run(
        Strategy.STRIPPED,
        RunConfig(model=fx80(), strip_size=25, adaptive_strip_sizing=True),
    )
    sizes = [s.strip_size for s in report.strips]
    assert max(sizes) > 25  # grew over the parallel prefix
    np.testing.assert_allclose(report.env.arrays["a"], serial.env.arrays["a"])


def test_serial_run_honors_engine():
    """The serial reference is cached per (machine, engine) and actually
    runs the requested engine; both engines are count-identical."""
    workload = build_bdna(n=40)
    runner = _runner(workload)
    compiled = runner.serial_run(fx80(), "compiled")
    walk = runner.serial_run(fx80(), "walk")
    assert compiled is not walk  # separate cache entries
    assert compiled.loop_time == walk.loop_time
    assert runner.serial_run(fx80(), "walk") is walk  # cached
    np.testing.assert_array_equal(
        compiled.env.arrays["force"], walk.env.arrays["force"]
    )


def test_stripped_refuses_unparallelizable_scalar():
    """A loop-carried scalar refuses speculation in the stripped path
    exactly as in the unstripped one."""
    from repro.dsl.parser import parse

    source = """
program carried
  integer i, n
  real a(20), acc
  do i = 1, n
    acc = acc * 0.5 + a(i)
    a(i) = acc
  end do
end
"""
    inputs = {"n": 10, "a": np.linspace(0.0, 1.0, 20), "acc": 0.0}
    runner = LoopRunner(parse(source), inputs)
    report = runner.run(
        Strategy.STRIPPED, RunConfig(model=fx80(), strip_size=4)
    )
    assert report.strategy == Strategy.SERIAL.value
    assert report.stats.get("refused") == 1.0
