"""The no-fork thread backend (``--backend threads``).

The thread pool is a drop-in sibling of the forked :class:`WorkerPool`:
per-worker in-process shadow sets, the same shard tasks, the same
serial-order merge — so every observable (verdicts, shadows, simulated
times, stats, post-protocol memory) must be bit-identical to both the
fork backend and the compiled single-process engine.  Aborted shards
must merge identically too, and backend validation must reject unknown
names at every entry point (pool factory, RunConfig, CLI).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.instrument import build_plan
from repro.dsl.parser import parse
from repro.errors import InterpError
from repro.interp.env import Environment
from repro.interp.parallel_spec import ShardSpec
from repro.machine.costmodel import fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.parallel_backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    ThreadShadowArena,
    ThreadWorkerPool,
    WorkerPool,
    make_worker_pool,
    validate_backend,
)
from repro.workloads import PAPER_LOOPS
from repro.workloads.bdna import build_bdna
from repro.workloads.ocean import build_ocean
from repro.workloads.synthetic import build_dependence_injected

from tests.runtime.test_parallel_backend import (
    assert_env_equal,
    assert_full_parity,
    leaked_segments,
)


def spec_outcome(workload, engine, *, workers=None, procs=8, eager=False,
                 backend="fork"):
    """Run the unstripped protocol, returning (outcome, post-loop env)."""
    from repro.interp.interpreter import Interpreter
    from repro.machine.schedule import ScheduleKind
    from repro.machine.simulator import DoallSimulator
    from repro.runtime.speculative import run_speculative

    runner = LoopRunner(workload.program(), workload.inputs)
    env = Environment(runner.program, runner.inputs)
    Interpreter(runner.program, env, value_based=False).exec_block(runner._before)
    sim = DoallSimulator(fx80().with_procs(procs), ScheduleKind.BLOCK)
    outcome = run_speculative(
        runner.program, runner.loop, env, runner.plan, sim,
        engine=engine, workers=workers, eager=eager, backend=backend,
    )
    return outcome, env


def _shard_spec(workload):
    program = parse(workload.source)
    plan = build_plan(program)
    env = Environment(program, workload.inputs)
    return ShardSpec.from_plan(program, plan.loop, plan, env, num_procs=8)


# -- parity -------------------------------------------------------------------


@pytest.mark.parametrize(
    "name", ["BDNA_ACTFOR_do240", "MDG_INTERF_do1000", "OCEAN_FTRVMT_do109"]
)
def test_threads_match_fork_and_compiled(name):
    workload = PAPER_LOOPS[name]()
    compiled, env_c = spec_outcome(workload, "compiled")
    fork, env_f = spec_outcome(workload, "parallel", workers=3)
    threads, env_t = spec_outcome(
        workload, "parallel", workers=3, backend="threads"
    )
    assert_full_parity(compiled, threads, env_c, env_t)
    assert_full_parity(fork, threads, env_f, env_t)


def test_failing_loop_parity():
    workload = build_ocean(nk=150, overlap=True)
    fork, env_f = spec_outcome(workload, "parallel", workers=3)
    threads, env_t = spec_outcome(
        workload, "parallel", workers=3, backend="threads"
    )
    assert not threads.result.passed
    assert_full_parity(fork, threads, env_f, env_t)


def test_aborted_shard_merges_identically():
    """Eager abort inside a shard: the surviving marks of every shard —
    including the aborted one — must fold back to a fail, and the
    rolled-back + serially recomputed memory must match fork exactly."""
    workload = build_dependence_injected(n=80, dep_fraction=0.25)
    fork, env_f = spec_outcome(workload, "parallel", workers=2, eager=True)
    threads, env_t = spec_outcome(
        workload, "parallel", workers=2, eager=True, backend="threads"
    )
    assert fork.run.aborted and threads.run.aborted
    assert not fork.result.passed and not threads.result.passed
    assert_env_equal(env_f, env_t)


def test_whole_block_shards_over_threads():
    ref, env_r = spec_outcome(build_bdna(n=60), "vectorized", workers=2)
    threads, env_t = spec_outcome(
        build_bdna(n=60), "vectorized", workers=2, backend="threads"
    )
    assert_full_parity(ref, threads, env_r, env_t)


def test_stripped_pipeline_over_threads():
    def report(backend):
        workload = build_bdna(n=60)
        runner = LoopRunner(workload.program(), workload.inputs)
        cfg = RunConfig(
            model=fx80().with_procs(8), engine="parallel",
            workers=2, strip_size=16, backend=backend,
        )
        return runner.run(Strategy.STRIPPED, cfg)

    ref = report("fork")
    threads = report("threads")
    assert threads.times.as_dict() == ref.times.as_dict()
    assert threads.stats == ref.stats
    for name in ref.env.arrays:
        np.testing.assert_array_equal(
            ref.env.arrays[name], threads.env.arrays[name], err_msg=name
        )


def test_threads_leave_no_shm_segments():
    before = set(leaked_segments())
    spec_outcome(build_bdna(n=60), "parallel", workers=3, backend="threads")
    assert set(leaked_segments()) == before


# -- pool mechanics and validation --------------------------------------------


class TestPoolFactory:
    def test_backend_dispatch(self):
        spec = _shard_spec(build_bdna(n=40))
        with make_worker_pool(spec, 2, "threads") as pool:
            assert isinstance(pool, ThreadWorkerPool)
            assert pool.num_workers == 2
        with make_worker_pool(spec, 2, "fork") as pool:
            assert isinstance(pool, WorkerPool)

    def test_unknown_backend_rejected(self):
        spec = _shard_spec(build_bdna(n=40))
        with pytest.raises(InterpError, match="unknown parallel backend"):
            make_worker_pool(spec, 2, "turbo")

    def test_validate_backend(self):
        for name in BACKENDS:
            assert validate_backend(name) == name
        with pytest.raises(InterpError, match="turbo"):
            validate_backend("turbo")
        assert DEFAULT_BACKEND in BACKENDS

    def test_pool_reuse_across_runs(self):
        """One pool, many doalls — the strip-mined pipeline's pattern."""
        workload = build_bdna(n=60)
        spec = _shard_spec(workload)
        with make_worker_pool(spec, 2, "threads") as pool:
            for _ in range(3):
                assert pool.num_workers == 2

    def test_arena_close_is_idempotent(self):
        arena = ThreadShadowArena({"a": 16}, workers=2)
        assert len(arena.markers) == 2
        arena.close()
        arena.close()

    def test_pool_close_is_idempotent(self):
        spec = _shard_spec(build_bdna(n=40))
        pool = make_worker_pool(spec, 2, "threads")
        pool.close()
        pool.close()


class TestConfigValidation:
    def test_run_config_rejects_unknown_backend(self):
        with pytest.raises(InterpError, match="unknown parallel backend"):
            RunConfig(backend="turbo")

    def test_run_config_accepts_known_backends(self):
        for name in BACKENDS:
            assert RunConfig(backend=name).backend == name

    def test_cli_choices_derive_from_backends(self):
        from repro.cli import build_parser

        parser = build_parser()
        action = next(
            a
            for a in parser._subparsers._group_actions[0].choices["run"]._actions
            if "--backend" in a.option_strings
        )
        assert tuple(action.choices) == BACKENDS
        assert action.default == DEFAULT_BACKEND
