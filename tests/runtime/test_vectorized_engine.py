"""The vectorized whole-block engine: parity, composition, fallback.

The engine contract (see :mod:`repro.interp.vectorized_spec`) is that a
committed vectorized block is *bit-identical* to the compiled engine on
every observable — LRPD verdict and per-array detail, simulated time
breakdown, run stats, per-iteration costs, post-loop memory — and that
any loop the classifier or a runtime guard rejects silently degrades to
the compiled engine with the reason recorded on the report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.instrument import build_plan
from repro.dsl.parser import parse
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter, split_at_loop
from repro.machine.costmodel import fx80
from repro.machine.schedule import ScheduleKind
from repro.machine.simulator import DoallSimulator
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.runtime.speculative import run_speculative
from repro.workloads.bdna import build_bdna
from repro.workloads.mdg import build_mdg
from repro.workloads.ocean import build_ocean
from repro.workloads.spice import build_spice

PROCS = 8


def _speculative(workload, engine, *, eager=False, workers=None):
    program = parse(workload.source)
    plan = build_plan(program)
    before, _after = split_at_loop(program, plan.loop)
    env = Environment(program, workload.inputs)
    Interpreter(program, env, value_based=False).exec_block(before)
    sim = DoallSimulator(fx80().with_procs(PROCS), ScheduleKind.BLOCK)
    outcome = run_speculative(
        program, plan.loop, env, plan, sim,
        engine=engine, eager=eager, workers=workers,
    )
    return outcome, env


def _assert_outcomes_identical(ref, ref_env, vec, vec_env):
    assert ref.result == vec.result
    assert ref.times == vec.times
    assert ref.stats == vec.stats
    assert ref.run.aborted == vec.run.aborted
    assert ref.run.executed_iterations == vec.run.executed_iterations
    assert ref.run.iteration_costs == vec.run.iteration_costs
    assert ref_env.scalars == vec_env.scalars
    assert ref_env.arrays.keys() == vec_env.arrays.keys()
    for name in ref_env.arrays:
        np.testing.assert_array_equal(
            ref_env.arrays[name], vec_env.arrays[name], err_msg=name
        )


WORKLOADS = [
    pytest.param(lambda: build_bdna(n=120), id="bdna"),
    pytest.param(lambda: build_mdg(n=80), id="mdg"),
    pytest.param(lambda: build_ocean(nk=150), id="ocean"),
    pytest.param(lambda: build_ocean(nk=150, overlap=True), id="ocean-fail"),
]


class TestWholeBlockParity:
    @pytest.mark.parametrize("build", WORKLOADS)
    @pytest.mark.parametrize("eager", [False, True], ids=["lazy", "eager"])
    def test_bit_identical_to_compiled(self, build, eager):
        ref, ref_env = _speculative(build(), "compiled", eager=eager)
        vec, vec_env = _speculative(build(), "vectorized", eager=eager)
        _assert_outcomes_identical(ref, ref_env, vec, vec_env)

    def test_committed_block_reports_vectorized_engine(self):
        vec, _env = _speculative(build_bdna(n=60), "vectorized")
        assert vec.run.engine_used == "vectorized"
        assert vec.run.fallback_reason is None

    def test_eager_abort_delegates_with_identical_outcome(self):
        """An eager failure inside the block bails pre-commit; the
        compiled rerun reproduces the mid-doall abort point exactly."""
        ref, ref_env = _speculative(
            build_ocean(nk=150, overlap=True), "compiled", eager=True
        )
        vec, vec_env = _speculative(
            build_ocean(nk=150, overlap=True), "vectorized", eager=True
        )
        assert ref.run.aborted and vec.run.aborted
        assert vec.run.engine_used == "compiled"
        assert vec.run.fallback_reason is not None
        _assert_outcomes_identical(ref, ref_env, vec, vec_env)

    def test_shadow_state_identical(self):
        ref, _a = _speculative(build_mdg(n=60), "compiled")
        vec, _b = _speculative(build_mdg(n=60), "vectorized")
        for name, shadow in ref.run.marker.shadows.items():
            other = vec.run.marker.shadows[name]
            assert shadow.tw == other.tw
            assert shadow.tm == other.tm
            np.testing.assert_array_equal(shadow.w, other.w)
            np.testing.assert_array_equal(shadow.r, other.r)
            np.testing.assert_array_equal(shadow.np_, other.np_)
            np.testing.assert_array_equal(shadow.nx, other.nx)


class TestComposition:
    """The vectorized engine composes with the strip pipeline and the
    multiprocess backend without perturbing a single observable."""

    def _reports(self, config_kwargs):
        reports = {}
        for engine in ("compiled", "vectorized"):
            workload = build_bdna(n=60)
            runner = LoopRunner(workload.program(), workload.inputs)
            cfg = RunConfig(
                model=fx80().with_procs(PROCS), engine=engine, **config_kwargs
            )
            reports[engine] = runner.run(Strategy.STRIPPED, cfg)
        return reports["compiled"], reports["vectorized"]

    @pytest.mark.parametrize("strip_size", [7, 16])
    def test_stripped_pipeline(self, strip_size):
        ref, vec = self._reports({"strip_size": strip_size})
        assert ref.times.as_dict() == vec.times.as_dict()
        assert ref.stats == vec.stats
        assert len(ref.strips) == len(vec.strips)
        assert vec.fallbacks == []
        for name in ref.env.arrays:
            np.testing.assert_array_equal(
                ref.env.arrays[name], vec.env.arrays[name]
            )

    def test_worker_backend(self):
        ref, ref_env = _speculative(build_bdna(n=60), "compiled")
        vec, vec_env = _speculative(build_bdna(n=60), "vectorized", workers=2)
        assert vec.run.engine_used == "vectorized"
        _assert_outcomes_identical(ref, ref_env, vec, vec_env)

    def test_stripped_with_workers(self):
        ref, vec = self._reports({"strip_size": 16, "workers": 2})
        assert ref.times.as_dict() == vec.times.as_dict()
        assert ref.stats == vec.stats
        for name in ref.env.arrays:
            np.testing.assert_array_equal(
                ref.env.arrays[name], vec.env.arrays[name]
            )


class TestFallback:
    def test_rejected_workload_completes_via_compiled(self):
        """SPICE's reduction arrays are read outside their updates — the
        classifier rejects, and the run must complete on the compiled
        engine with the reject reason recorded."""
        ref, ref_env = _speculative(build_spice(n=80), "compiled")
        vec, vec_env = _speculative(build_spice(n=80), "vectorized")
        assert vec.run.engine_used == "compiled"
        assert vec.run.fallback_reason is not None
        assert "reduction" in vec.run.fallback_reason
        _assert_outcomes_identical(ref, ref_env, vec, vec_env)

    def test_fallbacks_recorded_on_report(self):
        workload = build_spice(n=80)
        runner = LoopRunner(workload.program(), workload.inputs)
        report = runner.run(
            Strategy.SPECULATIVE,
            RunConfig(model=fx80().with_procs(4), engine="vectorized"),
        )
        assert len(report.fallbacks) == 1
        loop_key, reason = report.fallbacks[0]
        assert "reduction" in reason
        assert loop_key

    def test_accepted_workload_records_no_fallback(self):
        workload = build_bdna(n=60)
        runner = LoopRunner(workload.program(), workload.inputs)
        report = runner.run(
            Strategy.SPECULATIVE,
            RunConfig(model=fx80().with_procs(4), engine="vectorized"),
        )
        assert report.fallbacks == []

    def test_runtime_bail_falls_back_bit_identically(self):
        """A loop the classifier accepts but whose execution trips a
        runtime guard (scalar carried across iterations of a virtual
        processor) must degrade to compiled mid-flight, pre-commit."""
        source = (
            "program p\n  integer i, n, idx(8)\n  real a(8), v(8), t\n"
            "  do i = 1, n\n    if (v(i) > 0.5) then\n      t = v(i)\n"
            "    end if\n    a(idx(i)) = t\n  end do\nend\n"
        )
        inputs = {
            "n": 8,
            "idx": np.array([3, 1, 4, 2, 8, 6, 5, 7]),
            "v": np.array([0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4]),
            "t": 0.0,
        }
        outcomes = {}
        envs = {}
        for engine in ("compiled", "vectorized"):
            program = parse(source)
            plan = build_plan(program)
            env = Environment(program, inputs)
            sim = DoallSimulator(fx80().with_procs(4), ScheduleKind.BLOCK)
            outcomes[engine] = run_speculative(
                program, plan.loop, env, plan, sim, engine=engine
            )
            envs[engine] = env
        vec = outcomes["vectorized"]
        if vec.run.engine_used == "compiled":
            assert vec.run.fallback_reason
        _assert_outcomes_identical(
            outcomes["compiled"], envs["compiled"], vec, envs["vectorized"]
        )
