"""Harness for the service suite: an in-process daemon on a real socket.

The server runs its own asyncio loop on a background thread while the
tests drive it over the unix socket with the blocking
:class:`~repro.service.client.ReproClient` — the exact wire path the
``repro submit`` CLI takes, without a subprocess per test (the smoke
suite covers the real daemon process).
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.service.server import LoopService, ReproServer


def short_socket_path() -> Path:
    """A socket path safely under the ~108-char AF_UNIX limit."""
    return Path(tempfile.mkdtemp(prefix="repro-", dir="/tmp")) / "d.sock"


class ServerHarness:
    """One in-process ReproServer on a background event loop."""

    def __init__(self, *, queue_size=64, request_timeout=120.0, service=None):
        self.socket_path = short_socket_path()
        self.server = ReproServer(
            self.socket_path,
            queue_size=queue_size,
            request_timeout=request_timeout,
            service=service,
        )
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_shutdown()

    def start(self) -> "ServerHarness":
        self._thread.start()
        assert self._ready.wait(timeout=10.0), "server did not come up"
        return self

    def stop(self) -> None:
        if self.loop is not None and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout=10.0)
        assert not self._thread.is_alive(), "server did not shut down"

    @property
    def service(self) -> LoopService:
        return self.server.service


@pytest.fixture
def harness():
    h = ServerHarness().start()
    yield h
    h.stop()


@pytest.fixture
def slow_harness():
    """A harness whose executions take >= 0.3s (timeout/backpressure
    tests need the dispatcher occupied while requests arrive)."""
    service = LoopService()
    original = service.execute

    def slow_execute(job):
        time.sleep(0.3)
        return original(job)

    service.execute = slow_execute
    h = ServerHarness(queue_size=1, service=service).start()
    yield h
    h.stop()
