"""Failure paths: every bad input gets a clean reply, and nothing a
client does — vanishing mid-job, flooding the queue, letting a request
time out — takes the daemon down."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.errors import JobRejected, ServiceConnectionError
from repro.service.client import ReproClient
from repro.service.protocol import FORMAT, VERSION, JobRequest


def wait_until_drained(client: ReproClient, deadline_s: float = 15.0) -> None:
    """Block until the daemon has finished every accepted job (so a
    follow-up identical submission hits the store, not a coalesced
    in-flight twin)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        stats = client.stats()
        if stats["pending"] == 0 and stats["executed"] >= 1:
            return
        time.sleep(0.05)
    raise AssertionError("daemon never drained its queue")


def raw_exchange(socket_path, line: bytes) -> dict:
    """Send one raw line and decode the raw reply (no client-side
    validation in the way — these tests probe the server's)."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(10.0)
        sock.connect(str(socket_path))
        sock.sendall(line)
        buffer = b""
        while b"\n" not in buffer:
            chunk = sock.recv(65536)
            assert chunk, "server closed without replying"
            buffer += chunk
    return json.loads(buffer.split(b"\n", 1)[0])


class TestMalformedTraffic:
    def test_non_json_line(self, harness):
        reply = raw_exchange(harness.socket_path, b"definitely not json\n")
        assert reply["status"] == "error"
        assert reply["error"]["code"] == "malformed-request"

    def test_foreign_format(self, harness):
        line = (json.dumps({"format": "other-protocol", "version": 1,
                            "op": "ping"}) + "\n").encode()
        reply = raw_exchange(harness.socket_path, line)
        assert reply["error"]["code"] == "malformed-request"

    def test_foreign_version(self, harness):
        line = (json.dumps({"format": FORMAT, "version": VERSION + 41,
                            "op": "ping", "id": 9}) + "\n").encode()
        reply = raw_exchange(harness.socket_path, line)
        assert reply["error"]["code"] == "unsupported-version"
        assert str(VERSION) in reply["error"]["message"]

    def test_unknown_op(self, harness):
        line = (json.dumps({"format": FORMAT, "version": VERSION,
                            "op": "dance", "id": 1}) + "\n").encode()
        reply = raw_exchange(harness.socket_path, line)
        assert reply["error"]["code"] == "unknown-op"
        assert reply["id"] == 1

    def test_daemon_survives_malformed_traffic(self, harness):
        raw_exchange(harness.socket_path, b"\xff\xfe garbage \n")
        with ReproClient(harness.socket_path, timeout=10.0) as client:
            assert client.ping()["pong"] is True
            assert client.stats()["errors"] >= 1


class TestBadJobs:
    def test_unknown_job_field(self, harness):
        with ReproClient(harness.socket_path, timeout=10.0) as client:
            with pytest.raises(JobRejected, match="unknown job field") as info:
                client.submit({"workload": "synthpass", "speed": "max"})
        assert info.value.code == "invalid-job"

    def test_unknown_workload(self, harness):
        with ReproClient(harness.socket_path, timeout=30.0) as client:
            with pytest.raises(JobRejected, match="servable") as info:
                client.submit(JobRequest(workload="nonesuch"))
        assert info.value.code == "unknown-workload"

    def test_unknown_engine(self, harness):
        with ReproClient(harness.socket_path, timeout=30.0) as client:
            with pytest.raises(JobRejected) as info:
                client.submit(JobRequest(workload="synthpass", engine="warp"))
        assert info.value.code == "invalid-job"

    def test_unknown_machine(self, harness):
        with ReproClient(harness.socket_path, timeout=30.0) as client:
            with pytest.raises(JobRejected) as info:
                client.submit(JobRequest(workload="synthpass", machine="fx9"))
        assert info.value.code == "invalid-job"

    def test_daemon_survives_bad_jobs(self, harness):
        with ReproClient(harness.socket_path, timeout=30.0) as client:
            with pytest.raises(JobRejected):
                client.submit(JobRequest(workload="nonesuch"))
            report = client.submit(JobRequest(workload="synthpass", procs=2))
            assert report.passed is True


class TestDisconnects:
    def test_client_vanishing_mid_job_leaves_daemon_healthy(self, slow_harness):
        """A client that submits and drops dead never hangs the daemon;
        its execution completes and feeds the fleet store regardless."""
        job = JobRequest(workload="synthpass", procs=4)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(str(slow_harness.socket_path))
        from repro.service.protocol import encode_message

        sock.sendall(encode_message({"op": "run", "job": job.to_json(), "id": 1}))
        sock.close()  # gone before the (slow) execution replies

        # the daemon keeps serving other clients throughout ...
        with ReproClient(slow_harness.socket_path, timeout=30.0) as client:
            assert client.ping()["pong"] is True
            # ... and the abandoned job still executed (same key -> its
            # verdict is in the store, so this one reuses the schedule)
            wait_until_drained(client)
            report = client.submit(job)
            assert report.reused_schedule

    def test_half_line_then_eof_is_harmless(self, harness):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(str(harness.socket_path))
        sock.sendall(b'{"format": "repro-serve", "vers')  # no newline
        sock.close()
        with ReproClient(harness.socket_path, timeout=10.0) as client:
            assert client.ping()["pong"] is True


class TestBackpressure:
    def test_queue_full_replies_cleanly(self, slow_harness):
        """queue depth 1 + a slow execution: job A occupies the
        dispatcher, job B fills the queue, job C must get queue-full."""
        results: dict[str, object] = {}

        def submit(name: str, procs: int):
            try:
                with ReproClient(slow_harness.socket_path, timeout=30.0) as c:
                    results[name] = c.submit(
                        JobRequest(workload="synthpass", procs=procs)
                    )
            except JobRejected as exc:
                results[name] = exc

        a = threading.Thread(target=submit, args=("a", 2))
        b = threading.Thread(target=submit, args=("b", 4))
        a.start()
        time.sleep(0.1)  # a: dequeued, executing
        b.start()
        time.sleep(0.1)  # b: parked in the depth-1 queue
        with ReproClient(slow_harness.socket_path, timeout=10.0) as client:
            with pytest.raises(JobRejected, match="queue is full") as info:
                client.submit(JobRequest(workload="synthpass", procs=8))
        assert info.value.code == "queue-full"
        a.join()
        b.join()
        # the rejected client was the only casualty
        assert results["a"].passed is True
        assert results["b"].passed is True
        with ReproClient(slow_harness.socket_path, timeout=10.0) as client:
            assert client.stats()["rejected"] >= 1

    def test_request_timeout_replies_and_execution_continues(self, slow_harness):
        job = JobRequest(workload="synthpass", procs=4)
        with ReproClient(slow_harness.socket_path, timeout=30.0) as client:
            with pytest.raises(JobRejected, match="not finished") as info:
                client.submit(job, server_timeout=0.05)
            assert info.value.code == "timeout"
            # the shielded execution carried on; the retry collects its
            # warmed verdict instead of paying the test again
            wait_until_drained(client)
            report = client.submit(job)
            assert report.reused_schedule
            assert client.stats()["timeouts"] >= 1

    def test_client_side_timeout_reconnects(self, slow_harness):
        from repro.errors import ServiceTimeout

        client = ReproClient(slow_harness.socket_path, timeout=0.05)
        with pytest.raises(ServiceTimeout):
            client.submit(JobRequest(workload="synthpass", procs=4))
        # the desynchronized connection was dropped; a fresh request on
        # the same client object transparently reconnects
        assert client.ping(timeout=10.0)["pong"] is True
        client.close()


class TestConnectionErrors:
    def test_unreachable_socket(self, tmp_path):
        client = ReproClient(tmp_path / "nobody-home.sock")
        with pytest.raises(ServiceConnectionError, match="cannot reach"):
            client.ping()
