"""Wire-protocol unit tests: envelope, job validation, report round-trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolError
from repro.interp.env import Environment
from repro.machine.costmodel import fx80
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.service.catalog import build_workload
from repro.service.protocol import (
    FORMAT,
    VERSION,
    JobRequest,
    ServedReport,
    comparable_payload,
    decode_message,
    encode_message,
    environment_digest,
    error_reply,
    ok_reply,
    report_payload,
)


class TestEnvelope:
    def test_round_trip(self):
        line = encode_message({"op": "ping", "id": 7})
        assert line.endswith(b"\n")
        payload = decode_message(line)
        assert payload["op"] == "ping"
        assert payload["id"] == 7
        assert payload["format"] == FORMAT
        assert payload["version"] == VERSION

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_message(b"hello there\n")

    def test_rejects_undecodable_bytes(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_message(b"\xff\xfe{}\n")

    def test_rejects_foreign_format(self):
        line = json.dumps({"format": "someone-else", "version": 1})
        with pytest.raises(ProtocolError, match="not a repro-serve"):
            decode_message(line)

    def test_rejects_future_version(self):
        # The error message must mention "version": the server keys its
        # unsupported-version error code on that.
        line = json.dumps({"format": FORMAT, "version": VERSION + 1})
        with pytest.raises(ProtocolError, match="version"):
            decode_message(line)

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2, 3]\n")

    def test_reply_shapes(self):
        ok = ok_reply(3, pong=True)
        assert ok == {"id": 3, "status": "ok", "pong": True}
        err = error_reply(4, "queue-full", "try later")
        assert err["status"] == "error"
        assert err["error"]["code"] == "queue-full"

    def test_error_reply_rejects_unknown_code(self):
        with pytest.raises(AssertionError):
            error_reply(1, "made-up-code", "nope")


class TestJobRequest:
    def test_defaults(self):
        job = JobRequest.from_json({"workload": "synthpass"})
        assert job.strategy == "speculative"
        assert job.engine == "compiled"
        assert job.schedule_cache is True
        assert job.procs is None

    def test_requires_workload(self):
        with pytest.raises(ProtocolError, match="workload"):
            JobRequest.from_json({"engine": "compiled"})

    def test_rejects_unknown_field(self):
        with pytest.raises(ProtocolError, match="strip_sizes"):
            JobRequest.from_json({"workload": "x", "strip_sizes": 4})

    def test_rejects_wrong_type(self):
        with pytest.raises(ProtocolError, match="procs"):
            JobRequest.from_json({"workload": "x", "procs": "four"})

    def test_rejects_bool_for_int_field(self):
        with pytest.raises(ProtocolError, match="must not be a bool"):
            JobRequest.from_json({"workload": "x", "workers": True})

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            JobRequest.from_json(["workload"])

    def test_key_is_canonical(self):
        a = JobRequest.from_json({"workload": "x", "procs": 4})
        b = JobRequest(workload="x", procs=4)
        c = JobRequest(workload="x", procs=8)
        assert a.key() == b.key()
        assert a.key() != c.key()
        # the key is JSON, so it survives any transport intact
        assert json.loads(a.key())["workload"] == "x"


class TestEnvironmentDigest:
    def test_sensitive_to_array_bits(self):
        workload = build_workload("synthpass")
        env = Environment(workload.program(), workload.inputs)
        base = environment_digest(env)
        assert base == environment_digest(env)
        name = sorted(env.arrays)[0]
        env.arrays[name][0] += 1
        assert environment_digest(env) != base

    def test_sensitive_to_scalars(self):
        workload = build_workload("synthpass")
        env = Environment(workload.program(), workload.inputs)
        base = environment_digest(env)
        env.scalars["brand_new_scalar"] = 42
        assert environment_digest(env) != base


class TestServedReport:
    @pytest.fixture(scope="class")
    def report(self):
        workload = build_workload("synthpass")
        runner = LoopRunner(workload.program(), workload.inputs)
        return runner.run(
            Strategy.SPECULATIVE, RunConfig(model=fx80(), engine="compiled")
        )

    def test_json_round_trip_is_exact(self, report):
        payload = report_payload(report)
        # the payload must be pure JSON ...
        wire = json.dumps(payload, sort_keys=True)
        # ... and survive the round trip bit-for-bit
        again = ServedReport.from_json(json.loads(wire)).to_json()
        assert again == payload

    def test_speedup_and_describe(self, report):
        served = ServedReport.from_report(report)
        assert served.passed is True
        assert served.speedup == pytest.approx(report.speedup)
        assert "speculative" in served.describe()

    def test_corrupt_payload_raises_protocol_error(self, report):
        payload = report_payload(report)
        del payload["times"]
        with pytest.raises(ProtocolError, match="corrupt report"):
            ServedReport.from_json(payload)

    def test_comparable_payload_drops_nondeterminism(self, report):
        payload = report_payload(report)
        comparable = comparable_payload(payload)
        assert "wall" not in comparable
        assert "cache_stats" not in comparable
        assert comparable["env_digest"] == payload["env_digest"]
        assert comparable["times"] == payload["times"]


class TestRecoveredReport:
    """DOACROSS-recovered executions over the wire."""

    @pytest.fixture(scope="class")
    def report(self):
        workload = build_workload("synthdoacross")
        runner = LoopRunner(workload.program(), workload.inputs)
        return runner.run(
            Strategy.DOACROSS_RECOVERY,
            RunConfig(model=fx80().with_procs(8), strip_size=40),
        )

    def test_recovered_strip_flags_round_trip(self, report):
        assert any(s.recovered for s in report.strips)
        payload = report_payload(report)
        served = ServedReport.from_json(payload)
        assert [s.recovered for s in served.strips] == \
            [s.recovered for s in report.strips]
        assert served.to_json() == payload

    def test_old_strip_payloads_default_unrecovered(self, report):
        # Reports from a pre-recovery daemon lack the flag entirely.
        payload = report_payload(report)
        for strip in payload["strips"]:
            del strip["recovered"]
        served = ServedReport.from_json(payload)
        assert all(not s.recovered for s in served.strips)

    def test_decisions_survive_the_comparable_payload(self, report):
        """The dropped-diagnostics regression: ``comparable_payload``
        must keep engine_decisions/fallbacks — only wall-clock and
        cache counters are nondeterministic."""
        payload = report_payload(report)
        comparable = comparable_payload(payload)
        assert comparable["engine_decisions"] == payload["engine_decisions"]
        assert comparable["fallbacks"] == payload["fallbacks"]
        assert any(
            "pipelined DOACROSS" in reason
            for _key, reason in payload["engine_decisions"]
        )
        assert comparable["stats"]["recovered_fraction"] > 0.0
