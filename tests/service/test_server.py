"""Server behaviour over the real socket: ops, sharing, coalescing."""

from __future__ import annotations

import os
import threading

from repro.service.client import ReproClient
from repro.service.protocol import JobRequest, comparable_payload
from repro.service.server import LoopService


class TestOps:
    def test_ping(self, harness):
        with ReproClient(harness.socket_path, timeout=10.0) as client:
            reply = client.ping()
            assert reply["pong"] is True
            assert reply["pid"] == os.getpid()  # in-process harness

    def test_stats_shape(self, harness):
        with ReproClient(harness.socket_path, timeout=10.0) as client:
            stats = client.stats()
        for key in ("received", "executed", "coalesced", "rejected",
                    "errors", "timeouts", "disconnects", "runners",
                    "pool_builds", "pool_hits", "profile", "pending"):
            assert key in stats, key

    def test_many_requests_one_connection(self, harness):
        with ReproClient(harness.socket_path, timeout=30.0) as client:
            for _ in range(3):
                assert client.ping()["pong"] is True
            report = client.submit(JobRequest(workload="synthpass", procs=4))
            assert report.passed is True


class TestServedExecution:
    def test_served_report_matches_direct_run(self, harness):
        """The daemon must be a transparent front end: a served job's
        deterministic payload is bit-identical to the same spec run
        directly on a fresh in-process service."""
        job = JobRequest(workload="synthpass", procs=4, schedule_cache=False)
        with ReproClient(harness.socket_path, timeout=30.0) as client:
            served = client.submit_raw(job)
        direct_service = LoopService()
        direct = direct_service.execute(job)
        assert comparable_payload(served) == comparable_payload(direct)

    def test_failing_workload_is_served_cleanly(self, harness):
        with ReproClient(harness.socket_path, timeout=30.0) as client:
            report = client.submit(JobRequest(workload="synthfail", procs=4))
        assert report.passed is False
        assert report.times.serial_rerun > 0.0

    def test_profile_store_is_shared_across_requests(self, harness):
        """Second identical job reuses the first one's cached verdict —
        the whole LRPD test is skipped (paper §IV.D, fleet-wide)."""
        job = JobRequest(workload="synthpass", procs=4, schedule_cache=True)
        with ReproClient(harness.socket_path, timeout=30.0) as client:
            first = client.submit(job)
            second = client.submit(job)
            stats = client.stats()
        assert not first.reused_schedule
        assert second.reused_schedule
        assert second.loop_time < first.loop_time
        assert stats["profile"]["hits"] >= 1

    def test_worker_pools_persist_across_requests(self, harness):
        job = JobRequest(
            workload="synthpass", procs=2, engine="parallel",
            workers=2, backend="threads", schedule_cache=False,
        )
        with ReproClient(harness.socket_path, timeout=60.0) as client:
            client.submit(job)
            client.submit(job)
            stats = client.stats()
        assert stats["pool_builds"] == 1
        assert stats["pool_hits"] >= 1

    def test_runners_persist_per_workload(self, harness):
        with ReproClient(harness.socket_path, timeout=30.0) as client:
            client.submit(JobRequest(workload="synthpass", procs=2))
            client.submit(JobRequest(workload="synthpass", procs=8))
            client.submit(JobRequest(workload="synthfail", procs=2))
            stats = client.stats()
        assert stats["runners"] == 2  # one per workload, not per job


class TestCoalescing:
    def test_identical_concurrent_jobs_share_one_execution(self, slow_harness):
        """A burst of identical requests costs one speculation, not N."""
        job = JobRequest(workload="synthpass", procs=4)
        replies = []
        errors = []

        def submit():
            try:
                with ReproClient(slow_harness.socket_path, timeout=30.0) as c:
                    replies.append(c.request({"op": "run", "job": job.to_json()}))
            except Exception as exc:  # noqa: BLE001 - surfaced in the assert
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(replies) == 4
        # every waiter got the same execution's report
        payloads = [comparable_payload(r["report"]) for r in replies]
        assert all(p == payloads[0] for p in payloads)
        assert sum(1 for r in replies if r["coalesced"]) >= 1
        with ReproClient(slow_harness.socket_path, timeout=10.0) as client:
            stats = client.stats()
        assert stats["received"] == 4
        assert stats["coalesced"] >= 1
        assert stats["executed"] + stats["coalesced"] >= 4
        assert stats["executed"] < 4


class TestShutdown:
    def test_shutdown_op_stops_server_and_unlinks_socket(self, harness):
        with ReproClient(harness.socket_path, timeout=10.0) as client:
            reply = client.shutdown_server()
        assert reply["shutting_down"] is True
        harness._thread.join(timeout=10.0)
        assert not harness._thread.is_alive()
        assert not harness.socket_path.exists()
