"""End-to-end smoke: a real ``repro serve`` daemon process under 64
concurrent clients with mixed pass/fail traffic.

Asserts the CI contract (the serve-smoke job runs exactly this):

* every served report's deterministic payload is **bit-identical** to a
  direct in-process ``run_loop`` of the same job spec;
* failing loops (rollback + serial re-execution) are served as cleanly
  as passing ones;
* graceful shutdown: exit code 0, the socket file is unlinked, no
  stray worker processes and no ``/dev/shm`` shadow segments survive.
"""

from __future__ import annotations

import contextlib
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.runtime.parallel_backend import SEGMENT_PREFIX
from repro.service.client import ReproClient
from repro.service.protocol import JobRequest, comparable_payload
from repro.service.server import LoopService

REPO_ROOT = Path(__file__).resolve().parents[2]

#: the smoke fleet: 16 distinct specs x 4 clients each = 64 concurrent
#: jobs.  schedule_cache off so every payload is a pure function of its
#: spec (reuse/coalescing shorten queues but never change payloads; the
#: reuse path has its own tests).
SPECS = [
    JobRequest(workload=workload, procs=procs, engine=engine,
               schedule_cache=False)
    for workload in ("synthpass", "synthfail")
    for procs in (2, 4)
    for engine in ("compiled", "vectorized", "walk")
] + [
    JobRequest(workload="synthpartial", strategy="stripped", strip_size=32,
               procs=procs, schedule_cache=False)
    for procs in (2, 4)
] + [
    JobRequest(workload="synthpass", procs=4, engine="parallel", workers=2,
               backend="threads", schedule_cache=False),
    JobRequest(workload="synthpass", procs=4, engine="parallel", workers=2,
               backend="fork", schedule_cache=False),
]
CLIENTS_PER_SPEC = 4


def python_pids() -> set[int]:
    """PIDs of live python processes that are not our own children.

    Our own children are excluded because the direct-baseline fork pool
    legitimately spawns a multiprocessing resource tracker in *this*
    process; a worker leaked by the exited daemon would be reparented to
    init, never to us, so it is still caught.
    """
    pids = set()
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read()
            with open(f"/proc/{entry}/stat") as handle:
                ppid = int(handle.read().rsplit(")", 1)[1].split()[1])
        except (OSError, IndexError, ValueError):
            continue
        if b"python" in cmdline and ppid != os.getpid():
            pids.add(int(entry))
    return pids


def shadow_segments() -> list[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return []
    return [p.name for p in shm.iterdir() if p.name.startswith(SEGMENT_PREFIX)]


def test_serve_smoke_64_clients():
    assert len(SPECS) * CLIENTS_PER_SPEC == 64
    socket_path = (
        Path(tempfile.mkdtemp(prefix="repro-", dir="/tmp")) / "d.sock"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    pids_before = python_pids()
    segments_before = set(shadow_segments())

    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(socket_path), "--queue-size", "128"],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        deadline = time.monotonic() + 30.0
        while True:
            try:
                with ReproClient(socket_path, timeout=5.0) as probe:
                    probe.ping()
                break
            except Exception:  # noqa: BLE001 - still booting
                assert daemon.poll() is None, daemon.communicate()[0]
                assert time.monotonic() < deadline, "daemon never came up"
                time.sleep(0.1)

        served: dict[int, dict] = {}
        errors: list[Exception] = []

        def one_client(index: int, job: JobRequest):
            try:
                with ReproClient(socket_path, timeout=120.0) as client:
                    served[index] = client.submit_raw(job)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(i, SPECS[i % len(SPECS)]))
            for i in range(64)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180.0)
        assert not errors, errors[:3]
        assert len(served) == 64

        # -- bit-identity against direct in-process runs ------------------
        direct_service = LoopService()
        try:
            direct = {
                spec.key(): comparable_payload(direct_service.execute(spec))
                for spec in SPECS
            }
        finally:
            direct_service.close()
        for index, payload in served.items():
            spec = SPECS[index % len(SPECS)]
            assert comparable_payload(payload) == direct[spec.key()], (
                f"served payload diverged from direct run for {spec}"
            )
        # mixed traffic really did mix: both verdicts were served
        verdicts = {json.dumps(p.get("passed")) for p in served.values()}
        assert verdicts == {"true", "false"}

        with ReproClient(socket_path, timeout=10.0) as client:
            stats = client.stats()
            assert stats["received"] == 64
            assert stats["errors"] == 0
            client.shutdown_server()
    finally:
        # On the success path the shutdown op is already in flight;
        # SIGTERM is the graceful path too, so failures tear down fast.
        if daemon.poll() is None:
            with contextlib.suppress(ProcessLookupError):
                daemon.terminate()
        try:
            rc = daemon.wait(timeout=60.0)
        except subprocess.TimeoutExpired:
            daemon.kill()
            raise

    # -- clean teardown ---------------------------------------------------
    assert rc == 0, daemon.communicate()[0]
    assert not socket_path.exists()
    leaked = set(shadow_segments()) - segments_before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        strays = python_pids() - pids_before - {daemon.pid, os.getpid()}
        if not strays:
            break
        time.sleep(0.2)
    assert not strays, f"stray python processes outlived the daemon: {strays}"
