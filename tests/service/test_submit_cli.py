"""The ``repro submit`` CLI against an in-process daemon.

Regression suite for the dropped-diagnostics bug: the served report
carries ``engine_decisions`` and ``fallbacks`` across the wire, but the
submit CLI used to have no way to print them — ``--verbose`` now does,
mirroring ``repro run --verbose``.
"""

from __future__ import annotations

from repro.cli import main


def _submit(harness, *argv):
    return main([
        "submit", argv[0], "--socket", str(harness.socket_path), *argv[1:]
    ])


class TestSubmitVerbose:
    def test_planner_decisions_print_under_verbose(self, harness, capsys):
        assert _submit(
            harness, "synthpass", "--engine", "auto", "--verbose",
            "--no-schedule-cache",
        ) == 0
        out = capsys.readouterr().out
        assert "engine decision :" in out
        assert "classifier" in out or "feedback" in out

    def test_quiet_submit_omits_decision_lines(self, harness, capsys):
        assert _submit(
            harness, "synthpass", "--engine", "auto", "--no-schedule-cache",
        ) == 0
        out = capsys.readouterr().out
        assert "engine decision :" not in out
        assert "engine fallback :" not in out

    def test_recovery_submit_prints_the_doacross_decision(self, harness, capsys):
        assert _submit(
            harness, "synthdoacross", "--strategy", "doacross_recovery",
            "--procs", "8", "--verbose", "--no-schedule-cache",
        ) == 0
        out = capsys.readouterr().out
        assert "doacross_recovery" in out
        assert "pipelined DOACROSS at distance" in out

    def test_fallback_lines_print_under_verbose(self, harness, capsys):
        # synthdoacross's inner busy loop is classifier-rejected by the
        # vectorized engine, so the served report carries a fallback.
        assert _submit(
            harness, "synthdoacross", "--engine", "vectorized",
            "--verbose", "--no-schedule-cache",
        ) == 0
        out = capsys.readouterr().out
        assert "engine fallback :" in out
        assert "vectorized ->" in out


class TestSubmitCorpus:
    """Lifted real-Python loops are servable like any paper loop."""

    def test_corpus_workload_served(self, harness, capsys):
        assert _submit(harness, "corpus/histogram", "--procs", "2") == 0
        out = capsys.readouterr().out
        assert "passed" in out.lower() or "speculative" in out.lower()

    def test_unknown_corpus_loop_rejected(self, harness, capsys):
        assert _submit(harness, "corpus/bogus") != 0
        err = capsys.readouterr().err
        assert "unknown workload" in err
