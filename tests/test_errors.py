"""Exception hierarchy tests."""

import pytest

from repro.errors import (
    AnalysisError,
    BaselineInapplicable,
    DslSyntaxError,
    InspectorNotExtractable,
    InterpError,
    MachineConfigError,
    ReproError,
    SpeculationError,
    WorkloadError,
)

ALL_ERRORS = [
    AnalysisError,
    BaselineInapplicable,
    DslSyntaxError,
    InspectorNotExtractable,
    InterpError,
    MachineConfigError,
    SpeculationError,
    WorkloadError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_all_derive_from_repro_error(error):
    assert issubclass(error, ReproError)


def test_inspector_error_is_analysis_error():
    assert issubclass(InspectorNotExtractable, AnalysisError)


def test_syntax_error_carries_line():
    error = DslSyntaxError("bad token", line=7)
    assert error.line == 7
    assert "line 7" in str(error)


def test_syntax_error_without_line():
    error = DslSyntaxError("bad token")
    assert error.line is None
    assert str(error) == "bad token"


def test_catching_the_base_class():
    with pytest.raises(ReproError):
        raise WorkloadError("nope")
