"""Workload record plumbing tests."""

from repro.workloads import PAPER_LOOPS
from repro.workloads.bdna import build_bdna


def test_program_returns_fresh_instances():
    workload = build_bdna(n=20)
    first = workload.program()
    second = workload.program()
    assert first is not second
    assert first == second  # structurally identical


def test_ref_ids_do_not_leak_between_instances():
    from repro.analysis.instrument import number_refs

    workload = build_bdna(n=20)
    numbered = workload.program()
    number_refs(numbered)
    fresh = workload.program()
    from repro.dsl.ast_nodes import ArrayRef, walk_expressions
    from repro.analysis.instrument import _stmt_expr_roots, _walk_program

    for stmt in _walk_program(fresh.body):
        for root in _stmt_expr_roots(stmt):
            for node in walk_expressions(root):
                if isinstance(node, ArrayRef):
                    assert node.ref_id == -1


def test_every_paper_loop_has_expectation_and_checks():
    for name, builder in PAPER_LOOPS.items():
        workload = builder()
        assert workload.name == name
        assert workload.expectation is not None
        assert workload.check_arrays or workload.check_scalars
        assert workload.description


def test_builders_are_deterministic():
    import numpy as np

    a, b = build_bdna(n=30, seed=3), build_bdna(n=30, seed=3)
    for key in a.inputs:
        np.testing.assert_array_equal(
            np.asarray(a.inputs[key]), np.asarray(b.inputs[key])
        )
