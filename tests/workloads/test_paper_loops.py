"""The seven PERFECT-like loops: plans, outcomes and oracle equality.

This is the core reproduction check of Table I's qualitative content:
each loop defeats the static compiler, the LRPD test reaches the paper's
verdict, the expected transforms are engaged, and the parallel execution
reproduces the serial state bit-for-bit (modulo float reassociation in
reductions, hence allclose).
"""

import pytest

from repro.analysis.dependence import StaticVerdict
from repro.machine.costmodel import CostModel
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads import PAPER_LOOPS

from tests.conftest import assert_env_matches


@pytest.fixture(scope="module")
def reports():
    """Run every paper loop once (speculative, 4 procs) and cache results."""
    out = {}
    model = CostModel(name="t4", num_procs=4)
    for name, builder in PAPER_LOOPS.items():
        workload = builder()
        runner = LoopRunner(workload.program(), workload.inputs)
        serial = runner.serial_run(model)
        report = runner.run(Strategy.SPECULATIVE, RunConfig(model=model))
        out[name] = (workload, runner, serial, report)
    return out


@pytest.mark.parametrize("name", list(PAPER_LOOPS))
def test_static_compiler_cannot_prove_parallel(reports, name):
    _wl, runner, _serial, _report = reports[name]
    # Either the verdict is non-parallel/unknown, or arrays still need the
    # run-time test (reduction validity with unknown subscripts).
    assert (
        runner.plan.static_report.verdict is not StaticVerdict.PARALLEL
        or runner.plan.tested_arrays
    )


@pytest.mark.parametrize("name", list(PAPER_LOOPS))
def test_lrpd_outcome_matches_paper(reports, name):
    workload, _runner, _serial, report = reports[name]
    assert report.passed == workload.expectation.test_passes


@pytest.mark.parametrize("name", list(PAPER_LOOPS))
def test_inspector_extractability_matches_paper(reports, name):
    workload, runner, _serial, _report = reports[name]
    assert (
        runner.plan.inspector_extractable
        == workload.expectation.inspector_extractable
    )


@pytest.mark.parametrize("name", list(PAPER_LOOPS))
def test_parallel_state_matches_serial_oracle(reports, name):
    workload, _runner, serial, report = reports[name]
    assert_env_matches(
        report.env, serial.env,
        arrays=workload.check_arrays, scalars=workload.check_scalars,
    )


@pytest.mark.parametrize("name", list(PAPER_LOOPS))
def test_expected_transforms_engaged(reports, name):
    workload, runner, _serial, report = reports[name]
    transforms = workload.expectation.transforms
    details = report.test_result.details
    if "reduction" in transforms:
        assert (
            any(d.reduction_elements > 0 for d in details.values())
            or runner.plan.scalar_reductions
        )
    if "privatization" in transforms:
        from repro.analysis.classify import ScalarClass

        has_private_scalars = any(
            cls is ScalarClass.PRIVATE
            for cls in runner.plan.scalar_classes.values()
        )
        assert (
            runner.plan.tested_arrays - runner.plan.reduction_arrays
            or has_private_scalars
        )


@pytest.mark.parametrize("name", list(PAPER_LOOPS))
def test_speculative_speedup_positive(reports, name):
    _wl, _runner, _serial, report = reports[name]
    assert report.speedup > 1.0


def test_track_is_speculative_only(reports):
    workload, runner, _serial, _report = reports["TRACK_NLFILT_do300"]
    assert not runner.plan.inspector_extractable
    assert runner.plan.inspector_obstacles


def test_bdna_recomputes_ind_in_inspector(reports):
    _wl, runner, _serial, _report = reports["BDNA_ACTFOR_do240"]
    assert "ind" in runner.plan.inspector_recompute_arrays


def test_mdg_has_scalar_reduction(reports):
    _wl, runner, _serial, _report = reports["MDG_INTERF_do1000"]
    assert runner.plan.scalar_reductions == {"esum": "+"}


def test_dyfesm_has_max_reduction(reports):
    _wl, runner, _serial, _report = reports["DYFESM_SOLVH_do20"]
    assert runner.plan.scalar_reductions.get("bmax") == "max"


def test_spice_reductions_found_through_temporaries(reports):
    _wl, runner, _serial, _report = reports["SPICE_LOAD_do40"]
    assert {"y", "rhs"} <= runner.plan.reduction_arrays


def test_ocean_fails_with_overlap():
    from repro.workloads.ocean import build_ocean

    workload = build_ocean(overlap=True)
    runner = LoopRunner(workload.program(), workload.inputs)
    model = CostModel(num_procs=4)
    serial = runner.serial_run(model)
    report = runner.run(Strategy.SPECULATIVE, RunConfig(model=model))
    assert not report.passed
    assert_env_matches(report.env, serial.env, arrays=["data"])


@pytest.mark.parametrize("name", list(PAPER_LOOPS))
def test_inspector_mode_agrees_where_applicable(reports, name):
    workload, runner, serial, _report = reports[name]
    if not runner.plan.inspector_extractable:
        pytest.skip("inspector not extractable (TRACK)")
    report = runner.run(Strategy.INSPECTOR, RunConfig(model=CostModel(num_procs=4)))
    assert report.passed == workload.expectation.test_passes
    assert_env_matches(
        report.env, serial.env,
        arrays=workload.check_arrays, scalars=workload.check_scalars,
    )
