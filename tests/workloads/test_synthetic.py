"""Synthetic workload generator tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.machine.costmodel import CostModel
from repro.runtime.orchestrator import LoopRunner, RunConfig, Strategy
from repro.workloads.synthetic import (
    build_blocked_chain,
    build_conditional_dead_reads,
    build_dependence_injected,
    build_hotspot_reduction,
    build_wavefront_chain,
)

from tests.conftest import assert_env_matches

MODEL = CostModel(name="t4", num_procs=4)


def run_speculative(workload, **config_kw):
    runner = LoopRunner(workload.program(), workload.inputs)
    serial = runner.serial_run(MODEL)
    report = runner.run(Strategy.SPECULATIVE, RunConfig(model=MODEL, **config_kw))
    assert_env_matches(report.env, serial.env, arrays=workload.check_arrays)
    return runner, report


class TestDependenceInjected:
    def test_zero_fraction_passes(self):
        _, report = run_speculative(build_dependence_injected(n=60, dep_fraction=0.0))
        assert report.passed

    @pytest.mark.parametrize("fraction", [0.05, 0.3, 1.0])
    def test_positive_fraction_fails(self, fraction):
        _, report = run_speculative(
            build_dependence_injected(n=60, dep_fraction=fraction)
        )
        assert not report.passed

    def test_fraction_validated(self):
        with pytest.raises(WorkloadError):
            build_dependence_injected(dep_fraction=1.5)

    def test_deterministic_for_seed(self):
        a = build_dependence_injected(n=30, dep_fraction=0.2, seed=7)
        b = build_dependence_injected(n=30, dep_fraction=0.2, seed=7)
        np.testing.assert_array_equal(a.inputs["rloc"], b.inputs["rloc"])


class TestHotspot:
    def test_hotspot_reduction_passes(self):
        _, report = run_speculative(build_hotspot_reduction(n=60))
        assert report.passed
        assert report.test_result.details["acc"].reduction_elements > 0

    def test_all_hot_concentrates_elements(self):
        workload = build_hotspot_reduction(n=60, hot_fraction=1.0, num_hot=2)
        targets = set(workload.inputs["target"].tolist())
        assert targets <= {1, 2}

    def test_fraction_validated(self):
        with pytest.raises(WorkloadError):
            build_hotspot_reduction(hot_fraction=-0.1)


class TestWavefront:
    def test_wavefront_fails_lrpd(self):
        _, report = run_speculative(build_wavefront_chain(n=48, num_chains=4))
        assert not report.passed

    def test_chain_count_validated(self):
        with pytest.raises(WorkloadError):
            build_wavefront_chain(n=4, num_chains=9)

    def test_scrambled_chains_still_flow_forward(self):
        workload = build_wavefront_chain(n=40, num_chains=4, scramble=True)
        wloc, rloc = workload.inputs["wloc"], workload.inputs["rloc"]
        writers = {}
        for it in range(40):
            if rloc[it] in writers:
                assert writers[rloc[it]] < it  # reads only earlier writes
            writers[wloc[it]] = it


class TestBlockedChain:
    def test_fails_iteration_wise(self):
        _, report = run_speculative(build_blocked_chain(n=40))
        assert not report.passed

    def test_passes_processor_wise_with_aligned_blocks(self):
        from repro.core.shadow import Granularity

        _, report = run_speculative(
            build_blocked_chain(n=40), granularity=Granularity.PROCESSOR
        )
        assert report.passed

    def test_odd_n_rejected(self):
        with pytest.raises(WorkloadError):
            build_blocked_chain(n=41)


class TestConditionalDeadReads:
    def test_dead_reads_pass(self):
        _, report = run_speculative(build_conditional_dead_reads(n=40))
        assert report.passed

    def test_live_reads_fail(self):
        _, report = run_speculative(
            build_conditional_dead_reads(n=40, live_fraction=1.0)
        )
        assert not report.passed

    def test_fraction_validated(self):
        with pytest.raises(WorkloadError):
            build_conditional_dead_reads(live_fraction=2.0)
